// Package gen constructs the graph families used across the paper and its
// experiments: the positive examples of Section 1 (hypercubes, complete
// graphs, trees, outerplanar graphs, unit interval/circular-arc graphs,
// chordal graphs), the Petersen graph of Figure 1, and generic synthetic
// workloads (random, regular, grids, tori, de Bruijn) for the memory-vs-
// stretch experiments.
//
// Every generator returns a connected simple graph with the natural port
// labeling (ports in neighbor-insertion order); callers who need an
// adversarial labeling permute ports afterwards.
//
// Generators return their graphs pre-frozen to the contiguous CSR layout
// (graph.Freeze), so graphs are born safe for concurrent readers and the
// Freeze calls inside read-heavy entry points (APSP builds, distance
// sources, scheme constructors) are no-ops unless the caller mutated the
// graph in between — Freeze, like any mutation, belongs to the serial
// phase that owns the graph.
package gen

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// Path returns the path P_n on n >= 1 vertices 0-1-2-...-(n-1).
func Path(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	g.Freeze()
	return g
}

// Cycle returns the cycle C_n on n >= 3 vertices.
func Cycle(n int) *graph.Graph {
	if n < 3 {
		panic("gen: cycle needs n >= 3")
	}
	g := Path(n)
	g.AddEdge(graph.NodeID(n-1), 0)
	g.Freeze()
	return g
}

// Complete returns K_n.
func Complete(n int) *graph.Graph {
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(graph.NodeID(u), graph.NodeID(v))
		}
	}
	g.Freeze()
	return g
}

// CompleteBipartite returns K_{a,b}: parts {0..a-1} and {a..a+b-1}.
func CompleteBipartite(a, b int) *graph.Graph {
	g := graph.New(a + b)
	for u := 0; u < a; u++ {
		for v := 0; v < b; v++ {
			g.AddEdge(graph.NodeID(u), graph.NodeID(a+v))
		}
	}
	g.Freeze()
	return g
}

// Star returns the star K_{1,n-1}: center 0, leaves 1..n-1.
func Star(n int) *graph.Graph {
	if n < 1 {
		panic("gen: star needs n >= 1")
	}
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(0, graph.NodeID(v))
	}
	g.Freeze()
	return g
}

// Grid2D returns the rows×cols grid; vertex (r,c) has id r*cols+c.
func Grid2D(rows, cols int) *graph.Graph {
	g := graph.New(rows * cols)
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	g.Freeze()
	return g
}

// Torus2D returns the rows×cols torus (grid with wraparound). Both
// dimensions must be >= 3 to avoid duplicate edges.
func Torus2D(rows, cols int) *graph.Graph {
	if rows < 3 || cols < 3 {
		panic("gen: torus needs both dimensions >= 3")
	}
	g := Grid2D(rows, cols)
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		g.AddEdge(id(r, cols-1), id(r, 0))
	}
	for c := 0; c < cols; c++ {
		g.AddEdge(id(rows-1, c), id(0, c))
	}
	g.Freeze()
	return g
}

// Hypercube returns the d-dimensional hypercube H on 2^d vertices; vertex
// ids are the binary strings, and the edge flipping bit i is inserted so
// that port i+1 at every vertex flips bit i — the labeling assumed by
// e-cube routing.
func Hypercube(d int) *graph.Graph {
	if d < 0 || d > 30 {
		panic("gen: hypercube dimension out of range")
	}
	n := 1 << d
	g := graph.New(n)
	for bit := 0; bit < d; bit++ {
		for u := 0; u < n; u++ {
			v := u ^ (1 << bit)
			if u < v {
				g.AddEdge(graph.NodeID(u), graph.NodeID(v))
			}
		}
	}
	// After this insertion order, vertex u received its arcs in bit order,
	// so port bit+1 flips bit. (Each vertex gains exactly one arc per bit.)
	g.Freeze()
	return g
}

// Petersen returns the Petersen graph: outer 5-cycle 0..4, inner pentagram
// 5..9, spokes i—i+5. It is strongly regular (10,3,0,1), so every pair of
// vertices is joined by a unique shortest path — the property Figure 1 of
// the paper exploits.
func Petersen() *graph.Graph {
	g := graph.New(10)
	for i := 0; i < 5; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%5))     // outer cycle
		g.AddEdge(graph.NodeID(5+i), graph.NodeID(5+(i+2)%5)) // pentagram
		g.AddEdge(graph.NodeID(i), graph.NodeID(5+i))         // spoke
	}
	g.Freeze()
	return g
}

// DeBruijn returns the undirected de Bruijn-like graph UB(2, d) on 2^d
// vertices: u is adjacent to (2u) mod n, (2u+1) mod n (self-loops and
// duplicate edges skipped). Used as a dense low-diameter workload.
func DeBruijn(d int) *graph.Graph {
	if d < 1 || d > 30 {
		panic("gen: de Bruijn dimension out of range")
	}
	n := 1 << d
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for _, v := range []int{(2 * u) % n, (2*u + 1) % n} {
			if u != v && !g.HasEdge(graph.NodeID(u), graph.NodeID(v)) {
				g.AddEdge(graph.NodeID(u), graph.NodeID(v))
			}
		}
	}
	g.Freeze()
	return g
}

// RandomTree returns a uniformly random labeled tree on n >= 1 vertices,
// generated from a random Prüfer sequence.
func RandomTree(n int, r *xrand.Rand) *graph.Graph {
	if n < 1 {
		panic("gen: tree needs n >= 1")
	}
	g := graph.New(n)
	if n == 1 {
		g.Freeze()
		return g
	}
	if n == 2 {
		g.AddEdge(0, 1)
		g.Freeze()
		return g
	}
	prufer := make([]int, n-2)
	for i := range prufer {
		prufer[i] = r.Intn(n)
	}
	degree := make([]int, n)
	for i := range degree {
		degree[i] = 1
	}
	for _, v := range prufer {
		degree[v]++
	}
	// Standard decoding with a pointer-and-leaf scan.
	ptr := 0
	for degree[ptr] != 1 {
		ptr++
	}
	leaf := ptr
	for _, v := range prufer {
		g.AddEdge(graph.NodeID(leaf), graph.NodeID(v))
		degree[v]--
		if degree[v] == 1 && v < ptr {
			leaf = v
		} else {
			ptr++
			for degree[ptr] != 1 {
				ptr++
			}
			leaf = ptr
		}
	}
	g.AddEdge(graph.NodeID(leaf), graph.NodeID(n-1))
	g.Freeze()
	return g
}

// Caterpillar returns a caterpillar tree: a spine path of length spine
// with legs pendant leaves attached round-robin to spine vertices. Used as
// an easy interval-routing family.
func Caterpillar(spine, legs int) *graph.Graph {
	if spine < 1 {
		panic("gen: caterpillar needs spine >= 1")
	}
	g := Path(spine)
	for i := 0; i < legs; i++ {
		leaf := g.AddNode()
		g.AddEdge(graph.NodeID(i%spine), leaf)
	}
	g.Freeze()
	return g
}

// CompleteBinaryTree returns the complete binary tree with n vertices
// (heap layout: children of u are 2u+1, 2u+2).
func CompleteBinaryTree(n int) *graph.Graph {
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for _, c := range []int{2*u + 1, 2*u + 2} {
			if c < n {
				g.AddEdge(graph.NodeID(u), graph.NodeID(c))
			}
		}
	}
	g.Freeze()
	return g
}

// MaximalOuterplanar returns a random maximal outerplanar graph on n >= 3
// vertices: the outer cycle 0..n-1 plus a random triangulation of the
// inner polygon. Outerplanar graphs admit 1-interval routing schemes,
// which experiment E9 measures.
func MaximalOuterplanar(n int, r *xrand.Rand) *graph.Graph {
	if n < 3 {
		panic("gen: outerplanar needs n >= 3")
	}
	g := Cycle(n)
	// Random triangulation by recursive ear splitting of the polygon
	// [lo..hi] (indices on the outer cycle).
	var split func(lo, hi int)
	split = func(lo, hi int) {
		if hi-lo < 2 {
			return
		}
		// Choose the apex joined to both ends of the chord (lo,hi).
		k := lo + 1 + r.Intn(hi-lo-1)
		if k-lo >= 2 {
			g.AddEdge(graph.NodeID(lo), graph.NodeID(k))
		}
		if hi-k >= 2 {
			g.AddEdge(graph.NodeID(k), graph.NodeID(hi))
		}
		split(lo, k)
		split(k, hi)
	}
	split(0, n-1)
	g.Freeze()
	return g
}

// KTree returns a random k-tree on n vertices (n >= k+1): start from
// K_{k+1}, then repeatedly add a vertex adjacent to a random existing
// k-clique. Every k-tree is chordal; the paper cites chordal graphs as a
// family with O(n log^2 n) global memory.
func KTree(n, k int, r *xrand.Rand) *graph.Graph {
	if k < 1 || n < k+1 {
		panic("gen: k-tree needs n >= k+1, k >= 1")
	}
	g := Complete(k + 1)
	// cliques holds k-subsets that induce cliques usable as attachment
	// points. Seed with all k-subsets of the initial K_{k+1}.
	var cliques [][]graph.NodeID
	base := make([]graph.NodeID, k+1)
	for i := range base {
		base[i] = graph.NodeID(i)
	}
	for drop := 0; drop <= k; drop++ {
		c := make([]graph.NodeID, 0, k)
		for i, v := range base {
			if i != drop {
				c = append(c, v)
			}
		}
		cliques = append(cliques, c)
	}
	for g.Order() < n {
		c := cliques[r.Intn(len(cliques))]
		v := g.AddNode()
		for _, u := range c {
			g.AddEdge(v, u)
		}
		// New cliques: v together with each (k-1)-subset of c.
		for drop := 0; drop < k; drop++ {
			nc := make([]graph.NodeID, 0, k)
			nc = append(nc, v)
			for i, u := range c {
				if i != drop {
					nc = append(nc, u)
				}
			}
			cliques = append(cliques, nc)
		}
	}
	g.Freeze()
	return g
}

// UnitInterval returns a connected unit interval graph on n vertices:
// vertex i gets a random point x_i on a line, vertices at distance < 1 are
// adjacent; points are spaced so the graph is connected. density in (0,1]
// controls the expected overlap (larger = denser).
func UnitInterval(n int, density float64, r *xrand.Rand) *graph.Graph {
	if n < 1 {
		panic("gen: unit interval needs n >= 1")
	}
	if density <= 0 || density > 1 {
		panic("gen: density must be in (0,1]")
	}
	// Consecutive gaps drawn uniformly from [0, 1): guarantees x_{i+1} -
	// x_i < 1, so the path i—(i+1) always exists and the graph is
	// connected. Smaller density stretches the gaps toward 1.
	pts := make([]float64, n)
	x := 0.0
	for i := 0; i < n; i++ {
		pts[i] = x
		x += (1 - density/2) * r.Float64()
	}
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n && pts[j]-pts[i] < 1; j++ {
			g.AddEdge(graph.NodeID(i), graph.NodeID(j))
		}
	}
	g.Freeze()
	return g
}

// UnitCircularArc returns a connected unit circular-arc graph: n arcs of
// equal length arcLen (in turns, 0 < arcLen < 1) with random centers on
// the unit circle; two vertices are adjacent iff their arcs intersect.
// Centers are spread so that consecutive arcs overlap, keeping the graph
// connected.
func UnitCircularArc(n int, arcLen float64, r *xrand.Rand) *graph.Graph {
	if n < 3 {
		panic("gen: unit circular-arc needs n >= 3")
	}
	if arcLen <= 0 || arcLen >= 1 {
		panic("gen: arcLen must be in (0,1)")
	}
	// Place centers at jittered positions around the circle. Consecutive
	// centers sit 1/n apart up to a relative jitter of arcLen/2, so arcs
	// overlap (gap < arcLen) whenever arcLen > 2/n; raise short arcs to
	// that floor to guarantee connectivity.
	if arcLen*float64(n) < 2.1 {
		arcLen = 2.1 / float64(n)
	}
	centers := make([]float64, n)
	for i := 0; i < n; i++ {
		jitter := (r.Float64() - 0.5) * arcLen * 0.5
		centers[i] = (float64(i)+0.5)/float64(n) + jitter
	}
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := centers[j] - centers[i]
			if d < 0 {
				d = -d
			}
			if d > 0.5 {
				d = 1 - d
			}
			if d < arcLen { // arcs of half-length arcLen/2 intersect iff gap < arcLen
				g.AddEdge(graph.NodeID(i), graph.NodeID(j))
			}
		}
	}
	g.Freeze()
	return g
}

// RandomConnected returns a connected Erdős–Rényi-style graph: a uniform
// random spanning tree plus each remaining pair independently with
// probability p.
func RandomConnected(n int, p float64, r *xrand.Rand) *graph.Graph {
	g := RandomTree(n, r)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !g.HasEdge(graph.NodeID(u), graph.NodeID(v)) && r.Float64() < p {
				g.AddEdge(graph.NodeID(u), graph.NodeID(v))
			}
		}
	}
	g.Freeze()
	return g
}

// RandomRegular returns a random d-regular connected graph on n vertices
// via the pairing model with restarts (n*d must be even, d < n). For the
// small d and n used in experiments, restarts are cheap.
func RandomRegular(n, d int, r *xrand.Rand) *graph.Graph {
	if d < 2 || d >= n || n*d%2 != 0 {
		panic(fmt.Sprintf("gen: invalid regular parameters n=%d d=%d", n, d))
	}
	for attempt := 0; ; attempt++ {
		if attempt > 1000 {
			panic("gen: random regular graph generation failed to converge")
		}
		g, ok := tryPairing(n, d, r)
		if ok && g.Connected() {
			g.Freeze()
			return g
		}
	}
}

func tryPairing(n, d int, r *xrand.Rand) (*graph.Graph, bool) {
	stubs := make([]int, 0, n*d)
	for u := 0; u < n; u++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, u)
		}
	}
	r.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	g := graph.New(n)
	for i := 0; i < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u == v || g.HasEdge(graph.NodeID(u), graph.NodeID(v)) {
			return nil, false
		}
		g.AddEdge(graph.NodeID(u), graph.NodeID(v))
	}
	g.Freeze()
	return g, true
}

// AttachPath grows g by a pendant path of extra vertices hanging off
// vertex at, returning the id of the far end. The paper's Theorem 1 uses
// this padding to bring a graph of constraints up to order exactly n
// without touching constrained or target vertices.
func AttachPath(g *graph.Graph, at graph.NodeID, extra int) graph.NodeID {
	prev := at
	for i := 0; i < extra; i++ {
		v := g.AddNode()
		g.AddEdge(prev, v)
		prev = v
	}
	return prev
}
