package gen

import (
	"strings"
	"testing"

	"repro/internal/xrand"
)

func TestByName(t *testing.T) {
	for _, name := range FamilyNames {
		g, err := ByName(name, 20, xrand.New(1))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.Order() < 1 || !g.Connected() {
			t.Fatalf("%s: order %d, connected %v", name, g.Order(), g.Connected())
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	// The dispatch must match the direct constructors bit for bit: the
	// CLIs that moved onto ByName may not see different graphs.
	a, err := ByName("random", 50, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b := RandomConnected(50, 6.0/50, xrand.New(7))
	if a.String() != b.String() {
		t.Fatal("ByName(random) diverges from RandomConnected")
	}
}

func TestByNameRejects(t *testing.T) {
	cases := []struct {
		family  string
		n       int
		wantErr string
	}{
		{"random", 0, "n >= 1"},
		{"tree", -5, "n >= 1"},
		{"hypercube", 1, "n >= 2"},
		{"complete", 1, "n >= 2"},
		{"outerplanar", 2, "n >= 3"},
		{"mobius", 10, "unknown family"},
	}
	for _, c := range cases {
		if _, err := ByName(c.family, c.n, xrand.New(1)); err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Fatalf("ByName(%q, %d) err = %v, want error mentioning %q", c.family, c.n, err, c.wantErr)
		}
	}
}
