// Command repolint runs the repository's analyzer suite — the
// structural form of the invariants the fuzzers and benchmarks check
// dynamically. It is the CI gate: `go run ./cmd/repolint ./...` exits
// non-zero if any analyzer reports a diagnostic.
//
// Usage:
//
//	repolint [-only name[,name...]] [packages]
//
// Packages default to ./... . -only restricts the run to a comma-
// separated subset of analyzers (repolint -only wiresafe ./internal/...).
// Diagnostics print as file:line:col: [analyzer] message, one per line,
// sorted by position. Exit status: 0 clean, 1 diagnostics reported,
// 2 usage or load failure (a tree that does not type-check cannot be
// trusted either way).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis/canongate"
	"repro/internal/analysis/conndeadline"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/hotpath"
	"repro/internal/analysis/nodefaultfallback"
	"repro/internal/analysis/wiresafe"
)

// analyzers is the suite, in report order.
var analyzers = []*framework.Analyzer{
	wiresafe.Analyzer,
	canongate.Analyzer,
	hotpath.Analyzer,
	conndeadline.Analyzer,
	nodefaultfallback.Analyzer,
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: repolint [-only name[,name...]] [packages]\n\nanalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-18s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	suite, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := framework.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(2)
	}

	type located struct {
		pos      string
		analyzer string
		msg      string
	}
	var out []located
	for _, pkg := range pkgs {
		for _, a := range suite {
			pass := framework.NewPass(a, pkg, func(d framework.Diagnostic) {
				out = append(out, located{
					pos:      pkg.Fset.Position(d.Pos).String(),
					analyzer: a.Name,
					msg:      d.Message,
				})
			})
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "repolint: %s on %s: %v\n", a.Name, pkg.ImportPath, err)
				os.Exit(2)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].pos != out[j].pos {
			return out[i].pos < out[j].pos
		}
		return out[i].analyzer < out[j].analyzer
	})
	for _, d := range out {
		fmt.Printf("%s: [%s] %s\n", d.pos, d.analyzer, d.msg)
	}
	if len(out) > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d finding(s)\n", len(out))
		os.Exit(1)
	}
}

// selectAnalyzers resolves the -only flag against the suite.
func selectAnalyzers(only string) ([]*framework.Analyzer, error) {
	if only == "" {
		return analyzers, nil
	}
	byName := make(map[string]*framework.Analyzer, len(analyzers))
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var suite []*framework.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		suite = append(suite, a)
	}
	return suite, nil
}
