// Command constraints explores the paper's Section 2/3 machinery from the
// command line: it enumerates the canonical matrices of constraints dMpq
// and emits their generalized graphs of constraints.
//
// Usage:
//
//	constraints -d 3 -p 2 -q 3            # list canonical matrices (the paper's example)
//	constraints -d 3 -p 2 -q 3 -graphs    # also print each graph of constraints
//	constraints -d 3 -p 2 -q 3 -verify    # run the Lemma 2 verifier on each graph
//	constraints -count -d 4 -p 2 -q 5     # count classes and compare with Lemma 1
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	d := flag.Int("d", 3, "alphabet size d (entries 1..d)")
	p := flag.Int("p", 2, "rows (constrained vertices)")
	q := flag.Int("q", 3, "columns (target vertices)")
	graphs := flag.Bool("graphs", false, "print the graph of constraints of each matrix")
	verify := flag.Bool("verify", false, "verify Lemma 2 on each graph")
	countOnly := flag.Bool("count", false, "print only |dMpq| and the Lemma 1 bound")
	dot := flag.Bool("dot", false, "emit each graph of constraints in Graphviz DOT format")
	flag.Parse()

	if *p*(*q) > 24 || *q > 8 {
		fmt.Fprintf(os.Stderr, "constraints: shape %dx%d too large for exact enumeration (canonicalization is q!-exponential)\n", *p, *q)
		os.Exit(2)
	}

	ms := core.Enumerate(*d, *p, *q)
	num, den, bound := core.Lemma1Bound(*d, *p, *q)
	if *countOnly {
		fmt.Printf("|%dM%d%d| = %d\n", *d, *p, *q, len(ms))
		fmt.Printf("Lemma 1: d^pq / (p! q! (d!)^p) = %v / %v, floor = %v\n", num, den, bound)
		return
	}

	fmt.Printf("canonical representatives of %dM%d%d (%d classes; Lemma 1 bound %v):\n\n", *d, *p, *q, len(ms), bound)
	for i, m := range ms {
		fmt.Printf("#%d  index=%v\n%s\n", i+1, m.Index(), m)
		if *graphs || *verify || *dot {
			cg, err := core.BuildConstraintGraph(m)
			if err != nil {
				fmt.Fprintf(os.Stderr, "constraints: build failed: %v\n", err)
				os.Exit(1)
			}
			if *graphs {
				fmt.Printf("graph of constraints (order %d <= bound %d):\n%s", cg.Order(), cg.OrderBound(), cg.G)
			}
			if *dot {
				if err := cg.WriteDOT(os.Stdout); err != nil {
					fmt.Fprintf(os.Stderr, "constraints: dot failed: %v\n", err)
					os.Exit(1)
				}
			}
			if *verify {
				if err := cg.VerifyLemma2(); err != nil {
					fmt.Printf("Lemma 2: VIOLATED: %v\n", err)
					os.Exit(1)
				}
				fmt.Println("Lemma 2: verified (unique 2-paths, alternatives >= 4, ports forced for all s < 2)")
			}
		}
		fmt.Println()
	}
}
