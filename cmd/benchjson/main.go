// Command benchjson converts `go test -bench` text output on stdin into
// the machine-readable JSON documents CI archives — BENCH_evaluate.json
// (the evaluator suite), BENCH_core.json (the BFS/APSP/RouteVisit
// core-kernel micro-benchmarks plus the n=4096 streaming evaluator) and
// BENCH_weighted.json (the Dijkstra/weighted-APSP/weighted-streaming
// kernels) — so the performance trajectories accumulate run over run
// instead of living in throwaway logs. The format is documented in
// DESIGN.md ("Bench trajectory"):
//
//	{
//	  "goos": "linux", "goarch": "amd64", "pkg": "repro", "cpu": "...",
//	  "benchmarks": [
//	    {"name": "BenchmarkEvaluate/workers=1", "iterations": 1,
//	     "metrics": {"ns/op": 123456, "B/op": 12, "allocs/op": 3, "pairs": 1047552}}
//	  ]
//	}
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkEvaluate' -benchtime 1x . | benchjson > BENCH_evaluate.json
//	go test -run '^$' -bench '^(BenchmarkBFS|BenchmarkBFSTree|BenchmarkAPSP|BenchmarkRouteVisit|BenchmarkEvaluateStreaming4096)$' -benchtime 1x . | benchjson > BENCH_core.json
//	go test -run '^$' -bench '^(BenchmarkDijkstra|BenchmarkWeightedAPSP|BenchmarkWeightedEvaluateStreaming)$' -benchtime 1x . | benchjson > BENCH_weighted.json
//
// Lines that are neither benchmark results nor recognized metadata pass
// through untouched semantically: they are ignored, so PASS/ok trailers
// and custom prints never corrupt the document.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Document is the archived artifact.
type Document struct {
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Parse reads `go test -bench` output and assembles the document.
func Parse(r io.Reader) (*Document, error) {
	doc := &Document{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	return doc, sc.Err()
}

// parseBenchLine parses "BenchmarkName-8  10  123 ns/op  4 B/op ...":
// a name, an iteration count, then (value, unit) pairs.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	// Strip the trailing -GOMAXPROCS suffix go test appends to the name.
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

func main() {
	doc, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
