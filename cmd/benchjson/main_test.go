package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: AMD EPYC 7B13
BenchmarkEvaluate/workers=1-8         	       1	  94811358 ns/op	 1118 B/op	      17 allocs/op	   1047552 pairs
BenchmarkEvaluate/workers=8-8         	       1	  16229428 ns/op	 2710 B/op	      60 allocs/op	   1047552 pairs
BenchmarkEvaluateStreaming/stream/workers=1-8 	       1	 120000000 ns/op
PASS
ok  	repro	4.590s
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.GoOS != "linux" || doc.GoArch != "amd64" || doc.Pkg != "repro" {
		t.Fatalf("metadata wrong: %+v", doc)
	}
	if !strings.Contains(doc.CPU, "EPYC") {
		t.Fatalf("cpu wrong: %q", doc.CPU)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[0]
	if b.Name != "BenchmarkEvaluate/workers=1" {
		t.Fatalf("name %q (GOMAXPROCS suffix not stripped?)", b.Name)
	}
	if b.Iterations != 1 {
		t.Fatalf("iterations %d", b.Iterations)
	}
	if b.Metrics["ns/op"] != 94811358 || b.Metrics["pairs"] != 1047552 {
		t.Fatalf("metrics wrong: %v", b.Metrics)
	}
	if doc.Benchmarks[2].Metrics["ns/op"] != 120000000 {
		t.Fatalf("bare line metrics wrong: %v", doc.Benchmarks[2].Metrics)
	}
}

func TestParseIgnoresJunk(t *testing.T) {
	doc, err := Parse(strings.NewReader("hello\nBenchmarkBroken 12 nonsense ns/op\nPASS\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Fatalf("junk parsed as benchmarks: %+v", doc.Benchmarks)
	}
}

// TestParseMalformedLines feeds every malformed result-line shape CI
// could plausibly emit (truncated runs, interleaved logs, corrupted
// values) and requires each to be rejected calmly: skipped by
// parseBenchLine, never a panic, never a half-parsed benchmark in the
// document.
func TestParseMalformedLines(t *testing.T) {
	malformed := []string{
		"Benchmark",                                  // bare prefix, no fields
		"BenchmarkX",                                 // name only
		"BenchmarkX 10",                              // no metrics
		"BenchmarkX 10 123",                          // value with no unit
		"BenchmarkX ten 123 ns/op",                   // non-numeric iterations
		"BenchmarkX 10 1e999x ns/op",                 // unparseable float
		"BenchmarkX 10 123 ns/op 45",                 // dangling half pair
		"BenchmarkX 99999999999999999999 123 ns/op",  // iteration overflow
		"BenchmarkX 10 123 ns/op extra words here x", // log text glued on
	}
	for _, line := range malformed {
		if b, ok := parseBenchLine(line); ok {
			t.Errorf("parseBenchLine(%q) accepted as %+v, want rejection", line, b)
		}
	}
	doc, err := Parse(strings.NewReader(strings.Join(malformed, "\n") + "\nBenchmarkGood-8 1 5 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 1 || doc.Benchmarks[0].Name != "BenchmarkGood" {
		t.Fatalf("malformed lines corrupted the document: %+v", doc.Benchmarks)
	}
}

// TestParseOverlongLineError pins the failure mode for pathological
// input (a line beyond the 1 MiB scanner buffer): Parse must surface
// the scanner error, not panic or silently truncate.
func TestParseOverlongLineError(t *testing.T) {
	long := "BenchmarkHuge 1 " + strings.Repeat("9", 2*1024*1024) + " ns/op"
	if _, err := Parse(strings.NewReader(long)); err == nil {
		t.Fatal("overlong line parsed without error")
	}
}
