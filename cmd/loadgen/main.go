// Command loadgen is the open-loop latency harness for the sharded
// network route service: it boots an in-process loopback cluster (k
// shard servers + scatter/gather client, real TCP, real frames — the
// exact serving path of `routeserve -listen -shards k`), then fires
// query batches at a FIXED arrival rate and records what actually
// happened to each one.
//
// Open loop means arrivals are scheduled by the clock, never by
// responses: batch i is due at start + i*batch/rate whether or not
// batch i-1 has come back, and its recorded latency runs from that due
// time to gather-complete — so queueing delay under saturation is
// measured, not hidden, which is the honesty closed-loop "drive as
// fast as it answers" benchmarks (routeserve -bench) cannot offer.
//
// One cell is measured per (shards x distmode x clients) point of the
// sweep flags; each cell reports achieved throughput and p50/p99/p999
// latency plus error/overload counts, to stderr as a table and to -o
// as BENCH_serve.json in the same document shape as the other
// BENCH_*.json trajectories (DESIGN.md "Bench trajectory"), so CI can
// archive a serving data point per run next to the core/codec ones.
//
// Usage:
//
//	loadgen -family random -n 512 -scheme tables -rate 2000 -duration 10s
//	loadgen -load s.rsf -shards 1,4 -distmodes dense,stream -clients 4,16 -o BENCH_serve.json
//
// Query streams are seeded and deterministic in shape; wall-clock
// numbers are machine-dependent like every other recorded benchmark.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/cliutil"
	"repro/internal/evaluate"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/netserve"
	"repro/internal/routing"
	"repro/internal/schemeio"
	"repro/internal/serve"
	"repro/internal/shortest"
	"repro/internal/xrand"
)

func main() {
	family := flag.String("family", "random", "graph family when building: random|tree|torus|hypercube|complete|outerplanar|petersen")
	n := flag.Int("n", 512, "graph order when building (rounded as the family requires)")
	schemeName := flag.String("scheme", "tables", "scheme when building: tables|interval|landmark|ecube|tree")
	seed := flag.Uint64("seed", 1, "generator seed (graph, scheme and query stream)")
	load := flag.String("load", "", "load scheme+graph from this schemeio file instead of building")
	shardsCSV := flag.String("shards", "1", "comma-separated shard counts to sweep")
	modesCSV := flag.String("distmodes", "dense", "comma-separated distance backends to sweep: dense|stream|cache")
	clientsCSV := flag.String("clients", "4", "comma-separated client worker counts to sweep")
	rate := flag.Int("rate", 2000, "open-loop arrival rate, queries/second")
	duration := flag.Duration("duration", 10*time.Second, "measured duration per cell")
	batch := flag.Int("batch", 64, "queries per request frame")
	op := flag.String("op", "mix", "query op: route|len|stretch|mix (mix cycles all three)")
	deadline := flag.Duration("deadline", 5*time.Second, "per-request deadline (client and server side)")
	maxInFlight := flag.Int("maxinflight", 256, "per-shard admission-control cap")
	workers := flag.Int("workers", 0, "per-shard serving pool size (0 = all cores)")
	cacheRows := flag.Int("cacherows", 0, "row capacity for distmode cache (0 = default)")
	out := flag.String("o", "BENCH_serve.json", "write the JSON document here ('-' = stdout)")
	flag.Parse()

	if err := cliutil.ValidateLoadgenFlags(*rate, *duration, *batch); err != nil {
		fail(2, err)
	}
	if *deadline <= 0 {
		fail(2, fmt.Errorf("-deadline must be positive, got %v", *deadline))
	}
	if *maxInFlight < 1 {
		fail(2, fmt.Errorf("-maxinflight must be >= 1, got %d", *maxInFlight))
	}
	shardCounts, err := cliutil.ParseIntList("-shards", *shardsCSV)
	if err != nil {
		fail(2, err)
	}
	clientCounts, err := cliutil.ParseIntList("-clients", *clientsCSV)
	if err != nil {
		fail(2, err)
	}
	modes, err := parseModes(*modesCSV)
	if err != nil {
		fail(2, err)
	}
	if _, err := parseOpMix(*op); err != nil {
		fail(2, err)
	}

	g, s, apsp, err := buildOrLoad(*load, *family, *n, *schemeName, *seed)
	if err != nil {
		fail(2, err)
	}
	for _, k := range shardCounts {
		if _, err := netserve.NewShardMap(g.Order(), k); err != nil {
			fail(2, err)
		}
	}
	fmt.Fprintf(os.Stderr, "loadgen: scheme %s on n=%d m=%d; open loop at %d q/s for %v per cell\n",
		s.Name(), g.Order(), g.Size(), *rate, *duration)

	doc := document{
		GoOS: runtime.GOOS, GoArch: runtime.GOARCH, Pkg: "repro/cmd/loadgen",
		CPU: fmt.Sprintf("%d logical cores", runtime.NumCPU()),
	}
	fmt.Fprintf(os.Stderr, "  %-32s %10s %10s %8s %8s %10s %9s %10s %10s %10s\n",
		"cell", "sent", "done", "errs", "overload", "qps", "allocs/q", "p50ms", "p99ms", "p999ms")
	for _, k := range shardCounts {
		for _, mode := range modes {
			for _, clients := range clientCounts {
				cell := cellConfig{
					g: g, s: s, apsp: apsp, shards: k, mode: mode, clients: clients,
					rate: *rate, duration: *duration, batch: *batch, op: *op,
					deadline: *deadline, maxInFlight: *maxInFlight,
					workers: *workers, cacheRows: *cacheRows, seed: *seed,
				}
				res, err := runCell(cell)
				if err != nil {
					fail(1, fmt.Errorf("cell %s: %w", cell.name(), err))
				}
				doc.Benchmarks = append(doc.Benchmarks, res.benchmark(cell))
				fmt.Fprintf(os.Stderr, "  %-32s %10d %10d %8d %8d %10.0f %9.1f %10.2f %10.2f %10.2f\n",
					cell.name(), res.sent, res.completed, res.errors, res.overloaded, res.qps,
					res.allocsPerQuery, ms(res.p50), ms(res.p99), ms(res.p999))
			}
		}
	}
	blob, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		fail(1, err)
	}
	blob = append(blob, '\n')
	if *out == "-" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fail(1, err)
	}
	fmt.Fprintf(os.Stderr, "loadgen: wrote %s (%d cells)\n", *out, len(doc.Benchmarks))
}

func fail(code int, err error) {
	fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
	os.Exit(code)
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// document mirrors cmd/benchjson's archived shape so every BENCH_*.json
// parses the same way.
type document struct {
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
}

type benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func parseModes(csv string) ([]evaluate.DistMode, error) {
	names, err := splitCSV("-distmodes", csv)
	if err != nil {
		return nil, err
	}
	out := make([]evaluate.DistMode, len(names))
	for i, name := range names {
		m, err := evaluate.ParseDistMode(name)
		if err != nil {
			return nil, err
		}
		out[i] = m
	}
	return out, nil
}

func splitCSV(flagName, s string) ([]string, error) {
	if s == "" {
		return nil, fmt.Errorf("%s must not be empty", flagName)
	}
	var out []string
	for _, p := range splitComma(s) {
		if p == "" {
			return nil, fmt.Errorf("%s: empty entry", flagName)
		}
		out = append(out, p)
	}
	return out, nil
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}

// parseOpMix resolves -op to the op cycle one batch position steps
// through: a single op, or all three for "mix".
func parseOpMix(name string) ([]serve.Op, error) {
	if name == "mix" {
		return []serve.Op{serve.OpRoute, serve.OpLen, serve.OpStretch}, nil
	}
	op, err := serve.ParseOp(name)
	if err != nil {
		return nil, fmt.Errorf("-op: %w (or mix)", err)
	}
	return []serve.Op{op}, nil
}

// buildOrLoad resolves the served pair the same way routeserve does,
// minus the persistence bookkeeping the harness does not need.
func buildOrLoad(load, family string, n int, schemeName string, seed uint64) (*graph.Graph, routing.Scheme, *shortest.APSP, error) {
	if load != "" {
		f, err := os.Open(load)
		if err != nil {
			return nil, nil, nil, err
		}
		defer f.Close()
		g, s, err := schemeio.ReadFile(f)
		if err != nil {
			return nil, nil, nil, err
		}
		return g, s, nil, nil
	}
	g, err := gen.ByName(family, n, xrand.New(seed))
	if err != nil {
		return nil, nil, nil, err
	}
	s, apsp, err := cliutil.BuildScheme(schemeName, g, cliutil.SchemeConfig{Seed: seed})
	if err != nil {
		return nil, nil, nil, err
	}
	return g, s, apsp, err
}

type cellConfig struct {
	g                    *graph.Graph
	s                    routing.Scheme
	apsp                 *shortest.APSP
	shards, clients      int
	mode                 evaluate.DistMode
	rate, batch          int
	duration, deadline   time.Duration
	maxInFlight, workers int
	cacheRows            int
	op                   string
	seed                 uint64
}

func (c cellConfig) name() string {
	return fmt.Sprintf("Serve/shards=%d/distmode=%v/clients=%d", c.shards, c.mode, c.clients)
}

type cellResult struct {
	sent, completed    int64 // queries scheduled / answered without error
	errors, overloaded int64 // per-query errors / overload refusals among them
	qps                float64
	// allocsPerQuery is the corrected serving-path figure: the
	// process-wide Mallocs delta per completed query, minus the per-cell
	// no-op baseline below. allocsRaw keeps the uncorrected quotient so
	// recorded documents stay comparable with pre-correction runs.
	allocsPerQuery float64
	allocsRaw      float64
	allocsBaseline float64 // harness-only Mallocs per query (stub transport)
	p50, p99, p999 time.Duration
}

func (r cellResult) benchmark(c cellConfig) benchmark {
	return benchmark{
		Name:       c.name(),
		Iterations: r.completed,
		Metrics: map[string]float64{
			"rate":                 float64(c.rate),
			"batch":                float64(c.batch),
			"sent":                 float64(r.sent),
			"completed":            float64(r.completed),
			"errors":               float64(r.errors),
			"overloaded":           float64(r.overloaded),
			"qps":                  r.qps,
			"allocs_per_query":     r.allocsPerQuery,
			"allocs_per_query_raw": r.allocsRaw,
			"allocs_baseline":      r.allocsBaseline,
			"p50_ns":               float64(r.p50),
			"p99_ns":               float64(r.p99),
			"p999_ns":              float64(r.p999),
		},
	}
}

// cellSource builds one shard's distance backend: the dense table is
// shared when the scheme build already produced it (read-only), every
// other backend is per-shard so resident rows stay per-slice.
func cellSource(c cellConfig) (shortest.DistanceSource, error) {
	opt := evaluate.Options{Workers: c.workers, DistMode: c.mode, CacheRows: c.cacheRows}
	if (c.mode == evaluate.DistAuto || c.mode == evaluate.DistDense) && c.apsp != nil {
		return c.apsp, nil
	}
	return opt.Source(c.g, c.apsp)
}

// poolBatches is the size of the pre-built seeded batch pool every
// pass cycles through.
const poolBatches = 64

// runCell measures one (shards, distmode, clients) point.
func runCell(c cellConfig) (cellResult, error) {
	ops, err := parseOpMix(c.op)
	if err != nil {
		return cellResult{}, err
	}
	// Boot the loopback cluster.
	var srcErr error
	group, err := netserve.ListenGroupInto(c.shards, func(int) netserve.BatchHandlerInto {
		src, err := cellSource(c)
		if err != nil && srcErr == nil {
			srcErr = err
		}
		sv := serve.New(c.g, c.s, src, serve.Options{Workers: c.workers})
		return sv.ServeBatchInto
	}, netserve.Options{ReadTimeout: c.deadline, WriteTimeout: c.deadline, MaxInFlight: c.maxInFlight})
	if err != nil {
		return cellResult{}, err
	}
	defer group.Close()
	if srcErr != nil {
		return cellResult{}, srcErr
	}
	cluster, err := netserve.DialCluster(group.Addrs(), c.g.Order(), netserve.ClusterOptions{Deadline: c.deadline})
	if err != nil {
		return cellResult{}, err
	}
	defer cluster.Close()

	// Seeded query stream: a pool of pre-built batches the open loop
	// cycles through, so generation cost never pollutes latencies.
	n := c.g.Order()
	r := xrand.New(c.seed ^ 0x9e3779b97f4a7c15)
	pool := make([][]serve.Query, poolBatches)
	for b := range pool {
		qs := make([]serve.Query, c.batch)
		for i := range qs {
			u := graph.NodeID(r.Intn(n))
			v := graph.NodeID(r.Intn(n))
			if u == v {
				v = graph.NodeID((int(v) + 1) % n)
			}
			qs[i] = serve.Query{Op: ops[i%len(ops)], U: u, V: v}
		}
		pool[b] = qs
	}
	// Warm-up outside the measurement: resolve lazy backends, touch
	// every shard, fill connection pools.
	for w := 0; w < 2*c.shards; w++ {
		for _, res := range cluster.ServeBatch(pool[w%poolBatches]) {
			if res.Err != nil {
				return cellResult{}, fmt.Errorf("warm-up query failed: %w", res.Err)
			}
		}
	}

	interval := time.Duration(int64(time.Second) * int64(c.batch) / int64(c.rate))
	if interval <= 0 {
		interval = time.Nanosecond
	}
	total := int(c.duration / interval)
	if total < 1 {
		total = 1
	}

	// Calibrate the harness's own allocation footprint first: the exact
	// same schedule, workers and per-batch bookkeeping, but the transport
	// is a no-op returning a canned result slice. Whatever this pass
	// allocates (job structs, latency appends, timer internals) is
	// measurement machinery, not serving path, and is subtracted below.
	// The canned slice is shared and read-only, so the baseline charges
	// NO per-batch result allocation — the real path's result buffers
	// stay charged to the serving figure, as do the client-side frame
	// encode/decode costs (see DESIGN.md for the residual).
	canned := make([]serve.Result, c.batch)
	baseline := openLoop(c, pool, total, interval, func([]serve.Query) []serve.Result { return canned }, false)

	// The measured pass: the open loop proper. Arrivals land on the jobs
	// channel at fixed ticks; the channel is sized for every arrival of
	// the run, so a slow server backlogs the queue (and the recorded
	// latency) rather than stalling the arrival process.
	run := openLoop(c, pool, total, interval, cluster.ServeBatch, true)

	var res cellResult
	res.sent = int64(total) * int64(c.batch)
	res.completed = run.completed
	res.errors = run.errors
	res.overloaded = run.overloaded
	sort.Slice(run.lats, func(i, j int) bool { return run.lats[i] < run.lats[j] })
	res.p50 = quantile(run.lats, 0.50)
	res.p99 = quantile(run.lats, 0.99)
	res.p999 = quantile(run.lats, 0.999)
	res.qps = float64(res.completed) / run.elapsed.Seconds()
	if res.completed > 0 {
		res.allocsRaw = float64(run.mallocs) / float64(res.completed)
	}
	if baseline.completed > 0 {
		res.allocsBaseline = float64(baseline.mallocs) / float64(baseline.completed)
	}
	res.allocsPerQuery = res.allocsRaw - res.allocsBaseline
	if res.allocsPerQuery < 0 {
		res.allocsPerQuery = 0
	}
	return res, nil
}

// loopStats is one pass of the open-loop schedule.
type loopStats struct {
	completed, errors, overloaded int64
	lats                          []time.Duration
	elapsed                       time.Duration
	mallocs                       uint64 // process-wide Mallocs delta across the pass
}

// openLoop drives the full schedule (total jobs, c.clients workers, the
// same per-batch bookkeeping) against do, bracketing the pass with
// MemStats reads. paced=false collapses the arrival clock — every job
// is due immediately — which the no-op calibration pass uses so a cell
// does not take twice its -duration.
func openLoop(c cellConfig, pool [][]serve.Query, total int, interval time.Duration, do func([]serve.Query) []serve.Result, paced bool) loopStats {
	type job struct{ due time.Time }
	jobs := make(chan job, total)
	var wg sync.WaitGroup
	lats := make([][]time.Duration, c.clients)
	errCounts := make([]int64, c.clients)
	overloadCounts := make([]int64, c.clients)
	okQueries := make([]int64, c.clients)
	for w := 0; w < c.clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			b := w // stagger which pooled batch each client starts on
			for j := range jobs {
				qs := pool[b%poolBatches]
				b++
				out := do(qs)
				lat := time.Since(j.due)
				lats[w] = append(lats[w], lat)
				for _, res := range out {
					if res.Err == nil {
						okQueries[w]++
						continue
					}
					errCounts[w]++
					var ref *netserve.Refusal
					if errors.As(res.Err, &ref) && ref.Code == netserve.RefuseOverloaded {
						overloadCounts[w]++
					}
				}
			}
		}(w)
	}
	// The Mallocs delta is process-wide (clients + servers + cluster all
	// run in this process, which is the point — it sees the whole
	// serving path), divided by completed queries by the caller. The
	// pooled buffers in netserve/serve are what keep it near-flat as
	// rate grows.
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	start := time.Now()
	for i := 0; i < total; i++ {
		due := start
		if paced {
			due = start.Add(time.Duration(i) * interval)
			if d := time.Until(due); d > 0 {
				time.Sleep(d)
			}
		}
		jobs <- job{due: due}
	}
	close(jobs)
	wg.Wait()
	var st loopStats
	st.elapsed = time.Since(start)
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)
	st.mallocs = memAfter.Mallocs - memBefore.Mallocs
	for w := 0; w < c.clients; w++ {
		st.lats = append(st.lats, lats[w]...)
		st.completed += okQueries[w]
		st.errors += errCounts[w]
		st.overloaded += overloadCounts[w]
	}
	return st
}

// quantile reads the q-th latency from a sorted slice (nearest-rank).
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted)-1) + 0.5)
	return sorted[idx]
}
