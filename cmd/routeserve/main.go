// Command routeserve builds or loads a persisted routing scheme and
// serves batched routing queries against it — the serving-shaped front
// end of the repository: construct once, persist with the schemeio wire
// codec, reload in milliseconds, answer queries concurrently.
//
// Usage:
//
//	routeserve -family random -n 256 -scheme tables -save s.rsf   # build + persist
//	routeserve -load s.rsf -queries q.txt                         # load + answer queries
//	echo "stretch 0 17" | routeserve -load s.rsf -queries -       # queries from stdin
//	routeserve -load s.rsf -bench                                 # self-drive throughput sweep
//	routeserve -family tree -n 100 -scheme tree -queries -        # build ad hoc, no file
//	routeserve -load s.rsf -listen :9000                          # serve the wire protocol over TCP
//	routeserve -load s.rsf -listen :9000 -shards 4                # sharded loopback cluster behind one front
//	routeserve -family random -n 256 -scheme tables -kill 3 -deltaout p.rsd  # fault + incremental repair + patch
//	routeserve -load s.rsf -applydelta p.rsd -queries q.txt       # load generation g, serve generation g+1
//
// Queries are text lines `<op> <u> <v>` with op one of route, len,
// stretch; they are read in batches of -batch lines, each batch served
// over the worker pool of internal/serve (per-query errors annotate the
// output line; they never abort the stream). -distmode selects the
// oracle backend for stretch queries exactly as in routelab/memreq:
// dense precomputes the n^2 table, stream recomputes rows per worker
// (O(workers*n) resident memory), cache keeps a bounded LRU. Answers
// are bit-identical to the serial routing package for every backend,
// batch size and worker count.
//
// -bench self-drives the server: seeded random stretch queries in
// -batch-sized batches across a ladder of worker counts, reporting
// queries/second (wall time, machine-dependent; everything else this
// tool prints is deterministic).
//
// -kill injects a seeded fault before serving: it draws a deterministic
// plan (internal/faults; -killmode edges|vertices, -killseed, -killweight
// uniform|bydegree, connectivity-preserving unless -killanywhere), then
// repairs the scheme. Edge kills on -scheme tables take the incremental
// path — dirty-set refresh plus row repair, bit-identical to a rebuild
// (the faults conformance suite pins this) — and -deltaout writes the
// repair as a schemeio generation patch: the record a fault pipeline
// ships to serving shards instead of a full re-encoded scheme. Every
// other mode/scheme combination rebuilds from scratch on the faulted
// topology. -applydelta closes the loop on the serving side: load the
// generation-g container, decode + apply the patch (copy-on-write), and
// serve generation g+1 — no rebuild, no full re-transfer.
//
// -listen serves the internal/netserve wire protocol over TCP: framed
// binary query batches with per-connection read/write deadlines
// (-deadline), an admission-control semaphore (-maxinflight) answering
// `overloaded` refusals instead of queueing, and graceful drain on
// SIGINT/SIGTERM. With -shards k > 1 the router ID space is
// partitioned across k shard servers on loopback ephemeral ports —
// each with its own distance backend — behind a scatter/gather front
// listening on -listen; answers are byte-identical to the in-process
// server at every shard count (the netserve conformance suite pins
// this). cmd/loadgen is the matching open-loop latency harness.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/evaluate"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/netserve"
	"repro/internal/routing"
	"repro/internal/scheme/landmark"
	"repro/internal/scheme/table"
	"repro/internal/schemeio"
	"repro/internal/serve"
	"repro/internal/shortest"
	"repro/internal/xrand"
)

func main() {
	family := flag.String("family", "random", "graph family when building: random|tree|torus|hypercube|complete|outerplanar|petersen")
	n := flag.Int("n", 128, "graph order when building (rounded as the family requires)")
	schemeName := flag.String("scheme", "tables", "scheme when building: tables|interval|landmark|ecube|tree")
	seed := flag.Uint64("seed", 1, "generator seed when building")
	save := flag.String("save", "", "persist the built scheme+graph to this file (schemeio container v2)")
	load := flag.String("load", "", "load scheme+graph from this file instead of building")
	mmap := flag.Bool("mmap", false, "with -load: memory-map the container (v2 files only) and decode router payloads lazily on first touch")
	queries := flag.String("queries", "", "serve queries from this file ('-' = stdin); lines: route|len|stretch u v")
	batch := flag.Int("batch", 1024, "queries per served batch")
	workers := flag.Int("workers", 0, "worker pool size per batch (0 = all cores)")
	distmode := flag.String("distmode", "dense", "distance backend for stretch queries: dense|stream|cache")
	cacheRows := flag.Int("cacherows", 0, "row capacity for -distmode cache (0 = default)")
	bench := flag.Bool("bench", false, "self-drive mode: serve seeded stretch queries across a worker ladder and report throughput")
	benchQueries := flag.Int("benchqueries", 0, "query count per -bench cell (0 = default 200000)")
	listen := flag.String("listen", "", "serve the netserve wire protocol on this TCP address (host:port)")
	shards := flag.Int("shards", 1, "with -listen: partition the router ID space across this many serving shards")
	deadline := flag.Duration("deadline", 5*time.Second, "with -listen: per-connection read/write deadline and front-to-shard round-trip budget")
	maxInFlight := flag.Int("maxinflight", 64, "with -listen: admission-control cap on concurrent batches per server (excess gets an explicit overloaded refusal)")
	kill := flag.Int("kill", 0, "inject a seeded fault before serving: remove this many edges (or vertices with -killmode vertices)")
	killMode := flag.String("killmode", "edges", "with -kill: what the fault removes: edges|vertices")
	killSeed := flag.Uint64("killseed", 1, "with -kill: fault plan seed")
	killWeight := flag.String("killweight", "uniform", "with -kill: victim weighting: uniform|bydegree")
	killAnywhere := flag.Bool("killanywhere", false, "with -kill: allow plans that disconnect the graph (default keeps it connected)")
	deltaOut := flag.String("deltaout", "", "write the incremental repair as a generation patch to this file (needs -kill, -killmode edges, -scheme tables)")
	applyDelta := flag.String("applydelta", "", "apply a generation patch (from -deltaout) to the scheme before serving")
	flag.Parse()

	mode, err := cliutil.ParseEvalFlags(*workers, 0, *distmode, *cacheRows)
	if err != nil {
		fail(2, err)
	}
	if err := cliutil.ValidateServeFlags(*batch, *benchQueries); err != nil {
		fail(2, err)
	}
	if *listen != "" {
		if err := cliutil.ValidateNetFlags(*listen, *shards, *deadline, *maxInFlight); err != nil {
			fail(2, err)
		}
	}
	if !*bench && *queries == "" && *save == "" && *listen == "" {
		fail(2, fmt.Errorf("nothing to do: pass -save, -queries, -bench or -listen"))
	}
	if *bench && *queries != "" {
		fail(2, fmt.Errorf("-bench and -queries are mutually exclusive (the bench self-drives its own queries)"))
	}
	if *listen != "" && (*bench || *queries != "") {
		fail(2, fmt.Errorf("-listen is mutually exclusive with -queries and -bench (drive a listening server with cmd/loadgen)"))
	}
	if *mmap && *load == "" {
		fail(2, fmt.Errorf("-mmap only applies to -load"))
	}
	if *kill < 0 {
		fail(2, fmt.Errorf("-kill %d: victim count cannot be negative", *kill))
	}
	fmode, err := parseKillMode(*killMode)
	if err != nil {
		fail(2, err)
	}
	fweight, err := parseKillWeight(*killWeight)
	if err != nil {
		fail(2, err)
	}
	if *kill > 0 && *load != "" {
		fail(2, fmt.Errorf("-kill rewires the topology of a fresh build; to fault a persisted scheme, ship a generation patch with -applydelta"))
	}
	if *deltaOut != "" && (*kill == 0 || fmode != faults.KillEdges || *schemeName != "tables") {
		fail(2, fmt.Errorf("-deltaout records the incremental repair path: it needs -kill > 0, -killmode edges and -scheme tables"))
	}
	if *applyDelta != "" && *kill > 0 {
		fail(2, fmt.Errorf("-applydelta and -kill are mutually exclusive (a patch already names its removed edges)"))
	}
	if *applyDelta != "" && *mmap {
		fail(2, fmt.Errorf("-applydelta patches a decoded table scheme; -mmap decodes lazily (load without -mmap)"))
	}
	if (*kill > 0 || *applyDelta != "") && *save != "" {
		// The graph serializer rejects dead ports by design: a faulted
		// topology persists as base container + generation patch.
		fail(2, fmt.Errorf("-save cannot persist a faulted generation (port holes are not serializable); persist the base with -save and the fault with -deltaout"))
	}
	if *mmap && *save != "" {
		// A mappable container is already canonical v2 byte for byte, so
		// "re-save" would be a file copy; and the lazily-decoded scheme
		// deliberately has no encoder (encoding would force the full
		// decode -mmap exists to avoid).
		fail(2, fmt.Errorf("-mmap and -save are mutually exclusive (a mapped container is already canonical v2; to re-encode, -load without -mmap)"))
	}

	// The E22 measurement hook: wall time and heap growth of getting the
	// scheme into servable shape. Resident bytes are the heap-profile
	// delta (HeapAlloc), deliberately excluding the mapped file pages —
	// those live in page cache and are exactly what -mmap keeps off the
	// Go heap.
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	loadStart := time.Now()
	g, s, apsp, enc, blobBytes, err := buildOrLoad(*load, *mmap, *family, *n, *schemeName, *seed, mode, *workers)
	if err != nil {
		fail(2, err)
	}
	loadWall := time.Since(loadStart)
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	residentBytes := int64(msAfter.HeapAlloc) - int64(msBefore.HeapAlloc)
	if residentBytes < 0 {
		residentBytes = 0
	}

	// Fault pipeline — after the E22 load timers (faults are not load
	// cost). -save was already rejected for faulted runs: a post-fault
	// generation persists as base container + delta, never a container.
	if *kill > 0 {
		plan, err := faults.NewPlan(g, faults.Options{
			Mode: fmode, Count: *kill, Weighting: fweight,
			Seed: *killSeed, KeepConnected: !*killAnywhere,
		})
		if err != nil {
			fail(2, err)
		}
		repairStart := time.Now()
		tsch, isTable := s.(*table.Scheme)
		lsch, isLandmark := s.(*landmark.Scheme)
		switch {
		case fmode == faults.KillEdges && isTable && apsp != nil:
			// Incremental path: dirty-set refresh + row repair,
			// bit-identical to a from-scratch rebuild.
			for _, e := range plan.Edges {
				g.RemoveEdge(e[0], e[1])
			}
			g.Freeze()
			dirty := faults.DirtyRoots(apsp, plan.Edges)
			apsp.RefreshRows(g, dirty)
			changed, err := tsch.Repair(apsp, dirty, table.MinPort)
			if err != nil {
				fail(1, err)
			}
			fmt.Fprintf(os.Stderr, "routeserve: killed %d edge(s) (seed %d): %d dirty roots, %d rows repaired in %.2f ms\n",
				len(plan.Edges), *killSeed, len(dirty), len(changed),
				float64(time.Since(repairStart).Microseconds())/1000)
			if *deltaOut != "" {
				d, err := schemeio.NewDelta(1, plan.Edges, tsch, changed)
				if err != nil {
					fail(1, err)
				}
				blob, err := schemeio.EncodeDelta(g, d)
				if err != nil {
					fail(1, err)
				}
				if err := os.WriteFile(*deltaOut, blob, 0o644); err != nil {
					fail(1, err)
				}
				fmt.Fprintf(os.Stderr, "routeserve: generation patch 1->%d written to %s (%d bytes)\n",
					d.NewGen(), *deltaOut, len(blob))
			}
		case fmode == faults.KillEdges && isLandmark && apsp != nil:
			for _, e := range plan.Edges {
				g.RemoveEdge(e[0], e[1])
			}
			g.Freeze()
			dirty := faults.DirtyRoots(apsp, plan.Edges)
			apsp.RefreshRows(g, dirty)
			if err := lsch.Repair(apsp, dirty); err != nil {
				fail(1, err)
			}
			fmt.Fprintf(os.Stderr, "routeserve: killed %d edge(s) (seed %d): %d dirty roots, landmark tables repaired in %.2f ms\n",
				len(plan.Edges), *killSeed, len(dirty),
				float64(time.Since(repairStart).Microseconds())/1000)
		default:
			// No incremental repair for this combination (vertex kills
			// disconnect the pair space by construction; other schemes
			// have no repair on this CLI): inject the fault and serve the
			// pre-fault scheme on the damaged topology — the degraded
			// service internal/faults measures. Broken routes surface as
			// typed per-query errors, never wrong deliveries.
			plan.Apply(g)
			apsp = nil // pre-fault distances: stretch denominators must re-derive
			fmt.Fprintf(os.Stderr, "routeserve: killed %d edge(s), %d vertex(es) (seed %d); scheme left unrepaired — broken routes report typed errors\n",
				len(plan.Edges), len(plan.Vertices), *killSeed)
		}
	}
	if *applyDelta != "" {
		tsch, ok := s.(*table.Scheme)
		if !ok {
			fail(2, fmt.Errorf("-applydelta patches table schemes; this container holds %s", s.Name()))
		}
		blob, err := os.ReadFile(*applyDelta)
		if err != nil {
			fail(1, err)
		}
		d, err := schemeio.DecodeDelta(blob, g)
		if err != nil {
			fail(1, err)
		}
		patchStart := time.Now()
		h, ns, err := schemeio.ApplyDelta(g, tsch, d)
		if err != nil {
			fail(1, err)
		}
		g, s = h, ns
		apsp = nil // the loaded hop table (if any) described generation d.BaseGen
		fmt.Fprintf(os.Stderr, "routeserve: applied generation patch %d->%d: %d edge(s) removed, %d row(s) patched in %.2f ms\n",
			d.BaseGen, d.NewGen(), len(d.Edges), len(d.Routers),
			float64(time.Since(patchStart).Microseconds())/1000)
	}

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fail(1, err)
		}
		if enc != nil {
			err = schemeio.WriteFileV2Encoded(f, g, enc) // fresh build: blob already encoded once
		} else {
			err = schemeio.WriteFileV2(f, g, s) // -load + -save: re-encode (canonical) into a v2 container
		}
		if err != nil {
			fail(1, err)
		}
		if err := f.Close(); err != nil {
			fail(1, err)
		}
	}
	verb := "built"
	if *load != "" {
		verb = "loaded"
		if *mmap {
			verb = "mapped"
		}
	}
	fmt.Fprintf(os.Stderr, "routeserve: scheme %s on n=%d m=%d (%d persisted bytes)\n",
		s.Name(), g.Order(), g.Size(), blobBytes)
	fmt.Fprintf(os.Stderr, "routeserve: %s in %.2f ms, resident %d bytes\n",
		verb, float64(loadWall.Microseconds())/1000, residentBytes)

	if !*bench && *queries == "" && *listen == "" {
		return // save-only run: no serving, so never build a distance oracle
	}
	// The oracle backend only matters for stretch queries, and which ops
	// a query stream holds is unknown until it is read — so resolution
	// is lazy: a dense table a scheme build already produced is reused
	// immediately, anything else (including dense mode's n² build on
	// the -load path) is deferred until the first stretch query
	// actually reads a row. Route/len-only streams never pay for an
	// oracle at all. Sharded serving calls shardSource once per shard:
	// the dense table, when one exists, is shared (it is read-only and
	// one n² block is plenty), while stream/cache shards each get their
	// own backend so a shard's resident rows are exactly the rows its
	// owned sources asked for.
	opt := evaluate.Options{Workers: *workers, DistMode: mode, CacheRows: *cacheRows}
	var sharedSrc shortest.DistanceSource
	if apsp != nil {
		sharedSrc = apsp
	} else if mode == evaluate.DistAuto || mode == evaluate.DistDense {
		sharedSrc = serve.LazySource(g.Order(), func() shortest.DistanceSource {
			resolved, err := opt.Source(g, nil)
			if err != nil {
				fail(1, err) // unreachable: ParseEvalFlags admitted only servable modes
			}
			return resolved
		})
	}
	shardSource := func() shortest.DistanceSource {
		if sharedSrc != nil {
			return sharedSrc
		}
		return serve.LazySource(g.Order(), func() shortest.DistanceSource {
			resolved, err := opt.Source(g, nil)
			if err != nil {
				fail(1, err)
			}
			return resolved
		})
	}
	if *listen != "" {
		runListen(g, s, shardSource, *listen, *shards, *deadline, *maxInFlight, *workers)
		return
	}
	sv := serve.New(g, s, shardSource(), serve.Options{Workers: *workers})
	if *bench {
		fmt.Printf("load: %.2f ms, resident: %d bytes (%s)\n",
			float64(loadWall.Microseconds())/1000, residentBytes, verb)
		runBench(sv, g, *batch, *benchQueries, *workers)
		return
	}
	if err := serveQueries(sv, *queries, *batch); err != nil {
		fail(1, err)
	}
}

func parseKillMode(s string) (faults.Mode, error) {
	switch s {
	case "edges":
		return faults.KillEdges, nil
	case "vertices":
		return faults.KillVertices, nil
	default:
		return 0, fmt.Errorf("unknown -killmode %q (edges|vertices)", s)
	}
}

func parseKillWeight(s string) (faults.Weighting, error) {
	switch s {
	case "uniform":
		return faults.Uniform, nil
	case "bydegree":
		return faults.ByDegree, nil
	default:
		return 0, fmt.Errorf("unknown -killweight %q (uniform|bydegree)", s)
	}
}

func fail(code int, err error) {
	fmt.Fprintf(os.Stderr, "routeserve: %v\n", err)
	os.Exit(code)
}

// runListen serves the netserve wire protocol until SIGINT/SIGTERM,
// then drains gracefully. One shard serves directly; k > 1 shards run
// on loopback ephemeral ports behind a scatter/gather front bound to
// the public address, so clients see one endpoint either way.
func runListen(g *graph.Graph, s routing.Scheme, shardSource func() shortest.DistanceSource, listen string, shards int, deadline time.Duration, maxInFlight int, workers int) {
	if _, err := netserve.NewShardMap(g.Order(), shards); err != nil {
		fail(2, err)
	}
	netOpt := netserve.Options{ReadTimeout: deadline, WriteTimeout: deadline, MaxInFlight: maxInFlight}
	var (
		front   *netserve.Server
		group   *netserve.Group
		cluster *netserve.Cluster
	)
	if shards == 1 {
		sv := serve.New(g, s, shardSource(), serve.Options{Workers: workers})
		front = netserve.NewServerInto(sv.ServeBatchInto, netOpt)
	} else {
		var err error
		group, err = netserve.ListenGroupInto(shards, func(int) netserve.BatchHandlerInto {
			sv := serve.New(g, s, shardSource(), serve.Options{Workers: workers})
			return sv.ServeBatchInto
		}, netOpt)
		if err != nil {
			fail(1, err)
		}
		cluster, err = netserve.DialCluster(group.Addrs(), g.Order(), netserve.ClusterOptions{Deadline: deadline})
		if err != nil {
			group.Close()
			fail(1, err)
		}
		front = netserve.NewServerInto(cluster.ServeBatchInto, netOpt)
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		fail(1, err)
	}
	fmt.Fprintf(os.Stderr, "routeserve: listening on %s (%d shard(s), deadline %v, maxinflight %d)\n",
		ln.Addr(), shards, deadline, maxInFlight)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "routeserve: draining")
		front.Close()
		if cluster != nil {
			cluster.Close()
		}
		if group != nil {
			group.Close()
		}
	}()
	if err := front.Serve(ln); err != nil {
		fail(1, err)
	}
}

// buildOrLoad resolves the served (graph, scheme) pair: from a scheme
// file when -load is given, else built from the family/scheme flags
// (the family dispatch is gen.ByName, shared with memreq). It returns
// the persisted size either way — loaded files report what was read
// (the container size on disk; no re-encode on the load path), fresh
// builds what Encode produces — so the startup line always shows the
// persistence cost next to the scheme. The returned apsp is the dense
// hop table a scheme build computed, when one was needed, so the
// stretch oracle can reuse it instead of building the n² table twice;
// it is nil on the load path, for table-free schemes and in streaming
// modes. The returned Encoded (nil on the load path) is the blob a
// fresh build produced, so -save writes those exact bytes instead of
// encoding a second time.
func buildOrLoad(load string, useMmap bool, family string, n int, schemeName string, seed uint64, mode evaluate.DistMode, workers int) (*graph.Graph, routing.Scheme, *shortest.APSP, *schemeio.Encoded, int, error) {
	if load != "" {
		if useMmap {
			// Zero-copy path: O(index) validation now, router payloads
			// decoded on first touch straight out of the mapping. The
			// Mapped stays open for the process lifetime (the scheme
			// routes out of it), so Close is never called here.
			m, err := schemeio.OpenMapped(load)
			if err != nil {
				return nil, nil, nil, nil, 0, err
			}
			st, err := os.Stat(load)
			if err != nil {
				return nil, nil, nil, nil, 0, err
			}
			return m.Graph(), m.Scheme(), nil, nil, int(st.Size()), nil
		}
		f, err := os.Open(load)
		if err != nil {
			return nil, nil, nil, nil, 0, err
		}
		defer f.Close()
		g, s, err := schemeio.ReadFile(f)
		if err != nil {
			return nil, nil, nil, nil, 0, err
		}
		st, err := f.Stat()
		if err != nil {
			return nil, nil, nil, nil, 0, err
		}
		return g, s, nil, nil, int(st.Size()), nil
	}
	g, err := gen.ByName(family, n, xrand.New(seed))
	if err != nil {
		return nil, nil, nil, nil, 0, err
	}
	streaming := mode == evaluate.DistStream || mode == evaluate.DistCache
	s, apsp, err := cliutil.BuildScheme(schemeName, g, cliutil.SchemeConfig{Seed: seed, Streaming: streaming, Workers: workers})
	if err != nil {
		return nil, nil, nil, nil, 0, err
	}
	enc, err := schemeio.Encode(g, s)
	if err != nil {
		return nil, nil, nil, nil, 0, err
	}
	return g, s, apsp, enc, len(enc.Bytes), nil
}

// serveQueries streams the query file through the server in -batch
// sized batches, one answer line per query, in input order.
func serveQueries(sv *serve.Server, path string, batch int) error {
	in := os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	qs := make([]serve.Query, 0, batch)
	lineNo := 0
	flush := func() {
		if len(qs) == 0 {
			return
		}
		for _, res := range sv.ServeBatch(qs) {
			printResult(out, res)
		}
		qs = qs[:0]
		// Push the batch's answers downstream now: a co-process driving
		// the stream over a pipe waits for them before sending more
		// queries, so buffering until EOF would deadlock both sides.
		out.Flush()
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		q, err := parseQuery(line)
		if err != nil {
			flush() // answer what was already accepted before failing
			return fmt.Errorf("query line %d: %w", lineNo, err)
		}
		qs = append(qs, q)
		if len(qs) == batch {
			flush()
		}
	}
	if err := sc.Err(); err != nil {
		flush() // a scan error must not drop already-accepted answers either
		return err
	}
	flush()
	return nil
}

func parseQuery(line string) (serve.Query, error) {
	fields := strings.Fields(line)
	if len(fields) != 3 {
		return serve.Query{}, fmt.Errorf("want `op u v`, got %q", line)
	}
	op, err := serve.ParseOp(fields[0])
	if err != nil {
		return serve.Query{}, err
	}
	u, err := strconv.Atoi(fields[1])
	if err != nil {
		return serve.Query{}, fmt.Errorf("bad source in %q: %w", line, err)
	}
	v, err := strconv.Atoi(fields[2])
	if err != nil {
		return serve.Query{}, fmt.Errorf("bad destination in %q: %w", line, err)
	}
	return serve.Query{Op: op, U: graph.NodeID(u), V: graph.NodeID(v)}, nil
}

func printResult(out *bufio.Writer, res serve.Result) {
	if res.Err != nil {
		fmt.Fprintf(out, "error: %v\n", res.Err)
		return
	}
	switch {
	case res.Hops != nil:
		fmt.Fprintf(out, "len=%d path=", res.Len)
		for i, h := range res.Hops {
			if i > 0 {
				out.WriteByte(' ')
			}
			if h.Port == graph.NoPort {
				fmt.Fprintf(out, "%d", h.Node)
			} else {
				fmt.Fprintf(out, "%d[%d]", h.Node, h.Port)
			}
		}
		out.WriteByte('\n')
	case res.Dist != 0 || res.Stretch != 0:
		fmt.Fprintf(out, "len=%d dist=%d stretch=%.4f\n", res.Len, res.Dist, res.Stretch)
	default:
		fmt.Fprintf(out, "len=%d\n", res.Len)
	}
}

// runBench self-drives the server with seeded random stretch queries —
// the pair workload of the evaluator, served batch by batch — across a
// ladder of worker counts (or just the -workers value when set).
func runBench(sv *serve.Server, g *graph.Graph, batch, total, workers int) {
	if total <= 0 {
		total = 200000
	}
	ladder := []int{1, 2, 4, 8}
	if workers > 0 {
		ladder = []int{workers}
	}
	r := xrand.New(99)
	n := g.Order()
	qs := make([]serve.Query, 0, total)
	for len(qs) < total {
		u := graph.NodeID(r.Intn(n))
		v := graph.NodeID(r.Intn(n))
		// Fault-injected runs leave dead vertices behind; a query to one
		// is a correct error, but the bench measures served throughput.
		if u == v || g.Removed(u) || g.Removed(v) {
			continue
		}
		qs = append(qs, serve.Query{Op: serve.OpStretch, U: u, V: v})
	}
	// Warm-up outside the timers: the oracle may be lazily resolved on
	// the first stretch read, and timing that one-off n² build inside
	// rung 1 would corrupt the very worker-scaling comparison the
	// ladder exists to make.
	if res := sv.ServeBatch(qs[:1]); res[0].Err != nil {
		fail(1, fmt.Errorf("bench: warm-up query failed: %w", res[0].Err))
	}
	fmt.Printf("  %-8s %-10s %-10s %-12s %s\n", "workers", "queries", "batch", "ms", "queries/s")
	seen := map[int]bool{}
	for _, w := range ladder {
		wsv := sv.WithWorkers(w)
		// Report the pool size a batch of this shape actually runs with
		// (small batches cap the pool at their chunk count), and skip
		// ladder rungs that collapse onto an already-measured size —
		// two rows must never silently measure the same configuration.
		eff := wsv.Workers(min(batch, total))
		if seen[eff] {
			continue
		}
		seen[eff] = true
		start := time.Now()
		errs := 0
		for off := 0; off < total; off += batch {
			end := off + batch
			if end > total {
				end = total
			}
			for _, res := range wsv.ServeBatch(qs[off:end]) {
				if res.Err != nil {
					errs++
				}
			}
		}
		elapsed := time.Since(start)
		if errs > 0 {
			fail(1, fmt.Errorf("bench: %d queries failed", errs))
		}
		fmt.Printf("  %-8d %-10d %-10d %-12d %.0f\n",
			eff, total, batch, elapsed.Milliseconds(),
			float64(total)/elapsed.Seconds())
	}
}
