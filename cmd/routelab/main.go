// Command routelab runs the paper-reproduction experiments and prints
// their tables.
//
// Usage:
//
//	routelab               # run every experiment E1..E17
//	routelab -list         # list experiment ids and titles
//	routelab -run E5       # run one experiment
//	routelab -run E2,E3    # run a comma-separated subset
//
// All experiments are deterministic; see EXPERIMENTS.md for the recorded
// outputs and their interpretation against the paper.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/exp"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	run := flag.String("run", "", "comma-separated experiment ids (default: all)")
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	ids := []string{}
	if *run != "" {
		for _, id := range strings.Split(*run, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	} else {
		for _, e := range exp.All() {
			ids = append(ids, e.ID)
		}
	}

	for _, id := range ids {
		e, ok := exp.Get(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "routelab: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		fmt.Printf("### %s — %s\n\n", e.ID, e.Title)
		tables, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "routelab: %s failed: %v\n", id, err)
			os.Exit(1)
		}
		for _, t := range tables {
			t.Render(os.Stdout)
		}
	}
}
