// Command routelab runs the paper-reproduction experiments and prints
// their tables.
//
// Usage:
//
//	routelab                       # run every experiment E1..E20
//	routelab -list                 # list experiment ids and titles
//	routelab -run E5               # run one experiment
//	routelab -run E2,E3            # run a comma-separated subset
//	routelab -workers 8            # size of the all-pairs worker pool
//	routelab -sample 10000 -seed 1 # sampled (approximate) evaluation
//	routelab -distmode stream      # distance rows by per-worker BFS, no n^2 table
//	routelab -kernel batch         # 64-source MS-BFS rows (hop metric only)
//	routelab -run E18 -e18large    # the large-n backend scaling sweep
//	routelab -run E19              # the weighted (Dijkstra-row) backend sweep
//	routelab -format json -o r.json
//
// All-pairs measurements run on the worker pool of internal/evaluate;
// exhaustive results are bit-identical whatever -workers is. -sample
// evaluates a seeded uniform subset of the ordered pairs instead —
// deterministic for a fixed seed, but approximate, so the recorded
// EXPERIMENTS.md numbers always use exhaustive mode. -distmode swaps the
// distance backend (dense table, streaming BFS rows, bounded row cache)
// under every stretch measurement; backends return bit-identical rows,
// so this flag moves memory and time, never the numbers. -kernel picks
// the hop-metric row kernel behind dense and stream backends (scalar
// one-BFS-per-row vs the word-parallel 64-source batch); kernels too
// return bit-identical rows, but note -kernel batch changes the stream
// backend's RESIDENT-ROW accounting (64 rows per reader), so E18's
// recorded rows/distMiB columns are reproduced by the default kernel,
// and experiments with weighted measurements (E17, E19, E20's weighted
// round-trip check) reject -kernel batch explicitly.
//
// All experiments are deterministic; see EXPERIMENTS.md for the recorded
// outputs and their interpretation against the paper.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/evaluate"
	"repro/internal/exp"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	run := flag.String("run", "", "comma-separated experiment ids (default: all)")
	workers := flag.Int("workers", 0, "worker pool size for all-pairs evaluation (0 = all cores)")
	sample := flag.Int("sample", 0, "evaluate only this many sampled ordered pairs per measurement (0 = exhaustive)")
	seed := flag.Uint64("seed", 1, "seed for -sample pair selection")
	distmode := flag.String("distmode", "dense", "distance backend: dense|stream|cache")
	cacheRows := flag.Int("cacherows", 0, "row capacity for -distmode cache (0 = default)")
	kernel := flag.String("kernel", "auto", "hop-metric row kernel: auto|scalar|batch (batch = 64-source MS-BFS; weighted measurements such as E19 reject it)")
	e18large := flag.Bool("e18large", false, "extend E18 to the large-n ladder (n up to 32768; slow, sampled)")
	format := flag.String("format", "text", "output format: text|json|csv")
	out := flag.String("o", "", "write output to this file instead of stdout")
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	f, err := exp.ParseFormat(*format)
	if err != nil {
		fmt.Fprintf(os.Stderr, "routelab: %v\n", err)
		os.Exit(2)
	}
	mode, err := cliutil.ParseEvalFlags(*workers, *sample, *distmode, *cacheRows)
	if err != nil {
		fmt.Fprintf(os.Stderr, "routelab: %v\n", err)
		os.Exit(2)
	}
	kern, err := cliutil.ParseKernelFlag(*kernel, false)
	if err != nil {
		fmt.Fprintf(os.Stderr, "routelab: %v\n", err)
		os.Exit(2)
	}
	exp.SetEvalOptions(evaluate.Options{Workers: *workers, Sample: *sample, Seed: *seed, DistMode: mode, CacheRows: *cacheRows, Kernel: kern})
	exp.SetScalingLarge(*e18large)

	ids := []string{}
	if *run != "" {
		for _, id := range strings.Split(*run, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	} else {
		for _, e := range exp.All() {
			ids = append(ids, e.ID)
		}
	}

	// Validate every id before creating -o, so a typo cannot truncate a
	// previously recorded results file.
	exps := make([]exp.Experiment, 0, len(ids))
	for _, id := range ids {
		e, ok := exp.Get(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "routelab: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		exps = append(exps, e)
	}
	openOut := func() *os.File {
		if *out == "" {
			return os.Stdout
		}
		file, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "routelab: %v\n", err)
			os.Exit(1)
		}
		return file
	}

	if f == exp.Text {
		// Text streams each experiment as it completes.
		w := openOut()
		defer w.Close()
		for _, e := range exps {
			r, err := e.RunResult()
			if err != nil {
				fmt.Fprintf(os.Stderr, "routelab: %v\n", err)
				os.Exit(1)
			}
			if err := exp.RenderResults(w, []*exp.Result{r}, f); err != nil {
				fmt.Fprintf(os.Stderr, "routelab: rendering failed: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}

	// JSON and CSV emit one well-formed document, so run everything first
	// and only then create -o: a failing experiment leaves an existing
	// recorded file untouched.
	results := make([]*exp.Result, 0, len(exps))
	for _, e := range exps {
		r, err := e.RunResult()
		if err != nil {
			fmt.Fprintf(os.Stderr, "routelab: %v\n", err)
			os.Exit(1)
		}
		results = append(results, r)
	}
	w := openOut()
	defer w.Close()
	if err := exp.RenderResults(w, results, f); err != nil {
		fmt.Fprintf(os.Stderr, "routelab: rendering failed: %v\n", err)
		os.Exit(1)
	}
}
