// Command memreq measures the local and global memory requirement of the
// repository's universal routing schemes on a chosen graph family — the
// MEM_local / MEM_global quantities of the paper, under the fixed coding
// strategy of package coding.
//
// Usage:
//
//	memreq -family random -n 200 -scheme tables
//	memreq -family hypercube -n 64 -scheme ecube
//	memreq -family tree -n 150 -scheme interval
//	memreq -family theorem1 -n 512 -eps 0.5 -scheme tables
//	memreq -family random -n 20000 -scheme landmark -distmode stream -sample 200000
//	memreq -family random -n 20000 -scheme landmark -weighted -distmode stream -sample 200000
//
// -distmode selects the distance backend of the evaluation (see
// internal/shortest DistanceSource): dense precomputes the n^2 table,
// stream recomputes one row per claimed source inside each worker
// (O(workers*n) distance memory — the beyond-RAM mode), cache streams
// through a bounded LRU of rows. All three report bit-identical numbers.
//
// -kernel picks the hop-metric row kernel: scalar runs one BFS per row,
// batch runs 64 sources per word-parallel MS-BFS pass (shared arc
// scans). Kernels return bit-identical rows; under -distmode stream the
// batch kernel's readers hold a 64-row prefetch block each, and the
// resident-rows line reports that honestly (O(workers*64*n) instead of
// O(workers*n)). batch is rejected with -weighted (no Dijkstra batch
// kernel exists) and with -distmode cache (rows are cached one at a
// time) — explicit errors, never silent fallbacks.
//
// -weighted switches the measured metric to cost stretch under symmetric
// integer arc costs drawn uniformly from [1, -maxweight] off -seed
// (shortest.RandomWeights, so the assignment is reproducible from the
// flag values alone). Every -distmode applies unchanged: dense builds
// the weighted all-pairs table, stream/cache recompute rows by
// per-worker Dijkstra under the same residency contracts, and all
// backends report bit-identical numbers in this metric too.
//
// The theorem1 family builds the padded graph of constraints of a random
// matrix (the G_n of the paper's main theorem) and additionally prints
// the per-router lower bound next to the measured bits.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/evaluate"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/shortest"
	"repro/internal/xrand"
)

func main() {
	family := flag.String("family", "random", "graph family: random|tree|torus|hypercube|complete|outerplanar|petersen|theorem1")
	n := flag.Int("n", 128, "graph order (rounded as the family requires)")
	eps := flag.Float64("eps", 0.5, "epsilon for -family theorem1")
	schemeName := flag.String("scheme", "tables", "scheme: tables|interval|landmark|ecube|tree")
	seed := flag.Uint64("seed", 1, "generator seed")
	workers := flag.Int("workers", 0, "worker pool size for all-pairs evaluation (0 = all cores)")
	sample := flag.Int("sample", 0, "measure only this many sampled ordered pairs (0 = exhaustive)")
	sampleSeed := flag.Uint64("sampleseed", 1, "seed for -sample pair selection (independent of -seed)")
	distmode := flag.String("distmode", "dense", "distance backend: dense|stream|cache (stream/cache never materialize the n^2 table)")
	cacheRows := flag.Int("cacherows", 0, "row capacity for -distmode cache (0 = default)")
	kernel := flag.String("kernel", "auto", "hop-metric row kernel: auto|scalar|batch (batch = 64-source MS-BFS; incompatible with -weighted and -distmode cache)")
	weighted := flag.Bool("weighted", false, "measure cost stretch under random symmetric arc costs instead of hop stretch")
	maxWeight := flag.Int("maxweight", 8, "largest arc cost for -weighted (costs uniform on [1, maxweight], drawn off -seed)")
	flag.Parse()

	mode, err := cliutil.ParseEvalFlags(*workers, *sample, *distmode, *cacheRows)
	if err != nil {
		fmt.Fprintf(os.Stderr, "memreq: %v\n", err)
		os.Exit(2)
	}
	if err := cliutil.ValidateWeightFlags(*weighted, *maxWeight); err != nil {
		fmt.Fprintf(os.Stderr, "memreq: %v\n", err)
		os.Exit(2)
	}
	kern, err := cliutil.ParseKernelFlag(*kernel, *weighted)
	if err != nil {
		fmt.Fprintf(os.Stderr, "memreq: %v\n", err)
		os.Exit(2)
	}
	g, ins, err := buildGraph(*family, *n, *eps, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "memreq: %v\n", err)
		os.Exit(2)
	}
	var wts shortest.Weights
	if *weighted {
		wts = shortest.RandomWeights(g, *maxWeight, xrand.New(*seed))
	}
	opt := evaluate.Options{Workers: *workers, Sample: *sample, Seed: *sampleSeed, DistMode: mode, CacheRows: *cacheRows, Kernel: kern}
	// The dense tables are the only O(n^2) objects of this pipeline: build
	// them only in dense mode, where scheme construction and evaluation
	// read them. Stream/cache runs construct the scheme from BFS rows and
	// evaluate against on-demand rows (BFS or Dijkstra, per the metric),
	// so peak distance memory stays at O(workers*n) (plus the cache
	// capacity in cache mode) — weighted runs included.
	var apsp *shortest.APSP
	streaming := mode == evaluate.DistStream || mode == evaluate.DistCache
	needHop := !streaming
	if *weighted {
		// Under the weighted metric the evaluation reads the weighted
		// table; the hop table would only serve scheme construction, so
		// skip it for schemes that never read one — otherwise a weighted
		// dense run would resident TWO n² tables while reporting one.
		// The fallback IS the policy here (most schemes build without a
		// hop table); unknown scheme names were already rejected by
		// BuildScheme's loud dispatch before this point.
		//repolint:exhaustive-ok policy subset, not a dispatch — BuildScheme validates names
		switch *schemeName {
		case "landmark", "interval":
		default:
			needHop = false
		}
	}
	if needHop {
		apsp = shortest.NewAPSPWith(g, shortest.APSPOptions{Workers: opt.Workers, Kernel: kern})
	}
	// distTable is the dense table of the MEASURED metric (nil when
	// streaming): the hop table built above, or the weighted one — built
	// once here and shared by scheme construction (weighted tables) and
	// evaluation.
	distTable := apsp
	if *weighted {
		distTable = nil
		if !streaming {
			distTable, err = shortest.NewWeightedAPSPParallel(g, wts, opt.Workers)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memreq: %v\n", err)
				os.Exit(2)
			}
		}
	}
	s, _, err := cliutil.BuildScheme(*schemeName, g, cliutil.SchemeConfig{
		APSP: apsp, Weights: wts, WeightedAPSP: distTable,
		Seed: *seed, Streaming: streaming, Workers: opt.Workers,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "memreq: %v\n", err)
		os.Exit(2)
	}
	src, err := opt.SourceFor(g, wts, distTable)
	if err != nil {
		fmt.Fprintf(os.Stderr, "memreq: %v\n", err)
		os.Exit(2)
	}
	opt.Distances = src // evaluate against the same source the report describes

	var rep *evaluate.Report
	if *weighted {
		rep, err = evaluate.WeightedStretch(g, s, wts, distTable, opt)
	} else {
		rep, err = evaluate.Stretch(g, s, distTable, opt)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "memreq: routing failed: %v\n", err)
		os.Exit(1)
	}
	mr := evaluate.Memory(g, s, opt)
	diam := "n/a (no hop table)"
	if apsp != nil {
		diam = fmt.Sprintf("%d", apsp.Diameter())
	}
	fmt.Printf("graph: %s, n=%d, m=%d, diameter=%s\n", *family, g.Order(), g.Size(), diam)
	metric := "hops"
	if *weighted {
		metric = fmt.Sprintf("weighted (costs uniform on [1,%d], seed %d)", *maxWeight, *seed)
	}
	fmt.Printf("metric: %s\n", metric)
	rows := src.ResidentRows(opt.Workers)
	fmt.Printf("distances: %s (<= %d resident rows, ~%.1f MiB)\n",
		mode, rows, float64(rows)*float64(g.Order())*4/(1<<20))
	fmt.Printf("scheme: %s\n", s.Name())
	coverage := "all ordered pairs"
	if rep.Sampled {
		coverage = fmt.Sprintf("%d sampled pairs, seed %d", rep.Pairs, *sampleSeed)
	}
	fmt.Printf("stretch: max=%.3f mean=%.3f (worst pair %d->%d; %s)\n", rep.Max, rep.Mean, rep.WorstU, rep.WorstV, coverage)
	fmt.Printf("hops: max=%d total=%d\n", rep.MaxHops, rep.TotalHops)
	fmt.Printf("stretch histogram:")
	for i, c := range rep.Hist.Buckets {
		if c == 0 {
			continue
		}
		lo, hi := evaluate.BucketBounds(i)
		if hi < 0 {
			fmt.Printf(" [%.2f,inf):%d", lo, c)
		} else {
			fmt.Printf(" [%.2f,%.2f):%d", lo, hi, c)
		}
	}
	fmt.Println()
	fmt.Printf("MEM_local  = %d bits (router %d)\n", mr.LocalBits, mr.ArgMax)
	fmt.Printf("MEM_global = %d bits (mean %.1f bits/router)\n", mr.GlobalBits, mr.MeanBits)

	if ins != nil {
		b := core.LowerBound(ins.Params)
		sum := routing.SumBitsOver(s, ins.CG.A)
		fmt.Printf("\nTheorem 1 instance: p=%d q=%d d=%d\n", ins.Params.P, ins.Params.Q, ins.Params.D)
		fmt.Printf("lower bound: %.0f bits/router over the %d constrained routers\n", b.PerRouter, ins.Params.P)
		fmt.Printf("measured:    %.0f bits/router (constrained routers only)\n", float64(sum)/float64(ins.Params.P))
		fmt.Printf("upper bound: %.0f bits/router (raw table row)\n", b.UpperPerNode)
	}
}

func buildGraph(family string, n int, eps float64, seed uint64) (*graph.Graph, *core.Instance, error) {
	if family == "theorem1" {
		pr, err := core.ChooseParams(n, eps)
		if err != nil {
			return nil, nil, err
		}
		ins, err := core.BuildInstance(pr, seed)
		if err != nil {
			return nil, nil, err
		}
		return ins.CG.G, ins, nil
	}
	g, err := gen.ByName(family, n, xrand.New(seed))
	return g, nil, err
}
