// Smoke tests for examples/*: the example programs are executable
// documentation, but `go test ./...` reports "no test files" for them,
// so nothing used to catch an example that stopped compiling against an
// API change or started crashing. This suite vets the whole examples
// tree and runs every example binary under a deadline, requiring exit 0
// — the same bar CI applies to everything else.
package repro

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"testing"
	"time"
)

// exampleDirs lists examples/* packages (each holds one main).
func exampleDirs(t *testing.T) []string {
	t.Helper()
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatalf("reading examples/: %v", err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, filepath.Join("examples", e.Name()))
		}
	}
	sort.Strings(dirs)
	if len(dirs) == 0 {
		t.Fatal("no example directories found")
	}
	return dirs
}

// TestExamplesVet go-vets the examples tree: examples must hold to the
// same static bar as the library.
func TestExamplesVet(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	out, err := exec.CommandContext(ctx, "go", "vet", "./examples/...").CombinedOutput()
	if err != nil {
		t.Fatalf("go vet ./examples/...: %v\n%s", err, out)
	}
}

// TestExamplesRun builds and runs every example with a short deadline
// and asserts a clean exit. The examples take well under a second each;
// the generous per-example deadline only guards against a hang (a
// routing loop would otherwise wedge CI).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	for _, dir := range exampleDirs(t) {
		dir := dir
		t.Run(filepath.Base(dir), func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			out, err := exec.CommandContext(ctx, "go", "run", "./"+dir).CombinedOutput()
			if ctx.Err() != nil {
				t.Fatalf("example %s exceeded its deadline\noutput:\n%s", dir, out)
			}
			if err != nil {
				t.Fatalf("example %s exited non-zero: %v\noutput:\n%s", dir, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("example %s produced no output", dir)
			}
		})
	}
}
