// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//   - table row coding: raw fixed-width vs run-length, and the port
//     selection policy (MinPort vs RunGreedy) that feeds the RLE;
//   - interval routing port assignment policy (interval counts);
//   - landmark density (memory/stretch knob of the s<=3 regime);
//   - the OverheadLogTerms constant in the Theorem 1 bound (how much the
//     O(log n) slop terms matter at practical n).
//
// Each benchmark reports the ablated quantity as custom metrics so the
// comparison survives in bench_output.txt.
package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/routing"
	"repro/internal/scheme/interval"
	"repro/internal/scheme/landmark"
	"repro/internal/scheme/table"
	"repro/internal/shortest"
	"repro/internal/xrand"
)

// BenchmarkAblationTablePolicy compares global table memory under the two
// port selection policies on a workload where runs matter.
func BenchmarkAblationTablePolicy(b *testing.B) {
	g := gen.RandomConnected(256, 0.05, xrand.New(1))
	apsp := shortest.NewAPSP(g)
	var minBits, greedyBits int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sm, err := table.New(g, apsp, table.MinPort)
		if err != nil {
			b.Fatal(err)
		}
		sg, err := table.New(g, apsp, table.RunGreedy)
		if err != nil {
			b.Fatal(err)
		}
		minBits = routing.MeasureMemory(g, sm).GlobalBits
		greedyBits = routing.MeasureMemory(g, sg).GlobalBits
	}
	b.ReportMetric(float64(minBits), "minport-bits")
	b.ReportMetric(float64(greedyBits), "rungreedy-bits")
}

// BenchmarkAblationIntervalPolicy compares total interval counts under
// the two assignment policies (the k-IRS quality knob).
func BenchmarkAblationIntervalPolicy(b *testing.B) {
	g := gen.RandomConnected(192, 0.06, xrand.New(2))
	apsp := shortest.NewAPSP(g)
	labels := interval.DFSLabels(g)
	var minIv, greedyIv int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sm, err := interval.New(g, apsp, interval.Options{Labels: labels, Policy: interval.MinPort})
		if err != nil {
			b.Fatal(err)
		}
		sg, err := interval.New(g, apsp, interval.Options{Labels: labels, Policy: interval.RunGreedy})
		if err != nil {
			b.Fatal(err)
		}
		minIv = sm.TotalIntervals()
		greedyIv = sg.TotalIntervals()
	}
	b.ReportMetric(float64(minIv), "minport-intervals")
	b.ReportMetric(float64(greedyIv), "rungreedy-intervals")
}

// BenchmarkAblationLandmarkDensity sweeps the landmark count and reports
// the worst-router memory at each density (stretch stays <= 3 throughout;
// the sweet spot near sqrt(n log n) is the classical choice).
func BenchmarkAblationLandmarkDensity(b *testing.B) {
	g := gen.RandomConnected(256, 0.04, xrand.New(3))
	apsp := shortest.NewAPSP(g)
	counts := []int{4, 16, 64, 128}
	bits := make([]int, len(counts))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j, k := range counts {
			lm, err := landmark.New(g, apsp, landmark.Options{NumLandmarks: k, Seed: uint64(k)})
			if err != nil {
				b.Fatal(err)
			}
			bits[j] = routing.MeasureMemory(g, lm).LocalBits
		}
	}
	b.ReportMetric(float64(bits[0]), "L4-bits")
	b.ReportMetric(float64(bits[1]), "L16-bits")
	b.ReportMetric(float64(bits[2]), "L64-bits")
	b.ReportMetric(float64(bits[3]), "L128-bits")
}

// BenchmarkAblationOverheadTerms evaluates how sensitive the Theorem 1
// per-router bound is to the O(log n) overhead constant at n = 1024: the
// asymptotics hide it, and the metric shows it is already negligible.
func BenchmarkAblationOverheadTerms(b *testing.B) {
	pr, err := core.ChooseParams(1024, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	var base float64
	for i := 0; i < b.N; i++ {
		base = core.LowerBound(pr).PerRouter
	}
	// The overhead constant is charged once in MB and once in MC, so
	// moving it from 8 to 16 (or 4) shifts the total by 2*8*log2(n) bits;
	// the bound is linear in it.
	logn := 10.0 // log2 1024
	perRouterDelta := 2 * core.OverheadLogTerms * logn / float64(pr.P)
	b.ReportMetric(base, "bits-overhead8")
	b.ReportMetric(base-perRouterDelta, "bits-overhead16")
	b.ReportMetric(base+perRouterDelta/2, "bits-overhead4")
}
