// Weighted rows of the conformance matrix: the same backend-identity and
// serial/parallel contracts conformance_test.go pins for the hop metric,
// asserted under non-uniform arc costs — the invariant that lets a
// weighted `-distmode stream` run replace the dense weighted table with
// O(workers·n) Dijkstra rows without changing a single recorded number:
//
//   - weighted dense, streaming and cached backends produce bit-identical
//     evaluation reports at several worker counts, exhaustive and
//     sampled, all equal to the serial routing.MeasureWeightedStretch;
//   - the parallel weighted all-pairs table is bit-identical to the
//     serial one at any worker count;
//   - under UniformWeights the weighted report collapses to the
//     unweighted report of the same scheme on the same graph (cost IS
//     hop count when every arc costs one).
package repro

import (
	"reflect"
	"testing"

	"repro/internal/evaluate"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/scheme/landmark"
	"repro/internal/scheme/table"
	"repro/internal/shortest"
	"repro/internal/xrand"
)

// weightedConfSchemes builds the weighted columns of the matrix: the
// minimum-cost tables (guaranteed cost stretch 1 — asserted exactly) and
// the landmark scheme, which routes by hops and is simply measured under
// the weighted metric.
func weightedConfSchemes(t *testing.T, f confFamily, w shortest.Weights, apsp *shortest.APSP) []confScheme {
	t.Helper()
	tb, err := table.NewWeighted(f.g, w, nil, table.MinPort)
	if err != nil {
		t.Fatalf("%s: weighted tables: %v", f.name, err)
	}
	lm, err := landmark.New(f.g, apsp, landmark.Options{Seed: 17})
	if err != nil {
		t.Fatalf("%s: landmark: %v", f.name, err)
	}
	return []confScheme{
		{s: tb, maxStretch: 1, exact: true},
		{s: lm}, // hop guarantee only; weighted stretch recorded as measured
	}
}

// TestWeightedConformanceMatrix asserts dense == stream == cache ==
// serial for the weighted metric across the worker grid, exhaustive and
// sampled, on every family.
func TestWeightedConformanceMatrix(t *testing.T) {
	for _, f := range confFamilies() {
		f := f
		t.Run(f.name, func(t *testing.T) {
			w := shortest.RandomWeights(f.g, 9, xrand.New(91))
			wapsp, err := shortest.NewWeightedAPSP(f.g, w)
			if err != nil {
				t.Fatal(err)
			}
			apsp := shortest.NewAPSP(f.g)
			for _, cs := range weightedConfSchemes(t, f, w, apsp) {
				name := cs.s.Name()
				serial, err := routing.MeasureWeightedStretch(f.g, cs.s, w, wapsp)
				if err != nil {
					t.Fatalf("%s: serial: %v", name, err)
				}
				if serial.Max < 1 {
					t.Fatalf("%s: weighted stretch %v < 1 — distances broken", name, serial.Max)
				}
				if cs.exact && serial.Max != 1 {
					t.Fatalf("%s: guaranteed cost-stretch-1 scheme measured %v", name, serial.Max)
				}
				var ref *evaluate.Report
				for _, o := range backendOptions(evaluate.Options{}) {
					rep, err := evaluate.WeightedStretch(f.g, cs.s, w, nil, o)
					if err != nil {
						t.Fatalf("%s: %s workers=%d: %v", name, o.DistMode, o.Workers, err)
					}
					if got := rep.StretchReport(); got != serial {
						t.Fatalf("%s: %s workers=%d: report %+v != serial %+v", name, o.DistMode, o.Workers, got, serial)
					}
					if ref == nil {
						ref = rep
					} else if !reflect.DeepEqual(rep, ref) {
						t.Fatalf("%s: %s workers=%d: full report diverges across weighted backends", name, o.DistMode, o.Workers)
					}
				}
				ref = nil
				for _, o := range backendOptions(evaluate.Options{Sample: 300, Seed: 7}) {
					rep, err := evaluate.WeightedStretch(f.g, cs.s, w, nil, o)
					if err != nil {
						t.Fatalf("%s: sampled %s workers=%d: %v", name, o.DistMode, o.Workers, err)
					}
					if ref == nil {
						ref = rep
					} else if !reflect.DeepEqual(rep, ref) {
						t.Fatalf("%s: sampled %s workers=%d: report diverges across weighted backends", name, o.DistMode, o.Workers)
					}
				}
				if f.g.Order()*(f.g.Order()-1) > 300 && !ref.Sampled {
					t.Fatalf("%s: sampled weighted run did not sample", name)
				}
			}
		})
	}
}

// TestWeightedAPSPParallelMatchesSerial pins NewWeightedAPSPParallel ==
// NewWeightedAPSP at several worker counts on every family.
func TestWeightedAPSPParallelMatchesSerial(t *testing.T) {
	for _, f := range confFamilies() {
		w := shortest.RandomWeights(f.g, 9, xrand.New(92))
		serial, err := shortest.NewWeightedAPSP(f.g, w)
		if err != nil {
			t.Fatalf("%s: %v", f.name, err)
		}
		n := f.g.Order()
		for _, workers := range []int{0, 1, 4, 13} {
			par, err := shortest.NewWeightedAPSPParallel(f.g, w, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", f.name, workers, err)
			}
			for u := 0; u < n; u++ {
				if !reflect.DeepEqual(par.Row(graph.NodeID(u)), serial.Row(graph.NodeID(u))) {
					t.Fatalf("%s workers=%d: row %d diverges from serial", f.name, workers, u)
				}
			}
		}
	}
}

// TestUniformWeightsReportEqualsUnweighted pins the metric collapse: on
// all-ones weights the weighted report of a scheme is bit-identical to
// its unweighted report, for every backend.
func TestUniformWeightsReportEqualsUnweighted(t *testing.T) {
	for _, f := range confFamilies() {
		apsp := shortest.NewAPSP(f.g)
		lm, err := landmark.New(f.g, apsp, landmark.Options{Seed: 17})
		if err != nil {
			t.Fatalf("%s: %v", f.name, err)
		}
		w := shortest.UniformWeights(f.g)
		for _, mode := range []evaluate.DistMode{evaluate.DistDense, evaluate.DistStream, evaluate.DistCache} {
			opt := evaluate.Options{Workers: 2, DistMode: mode}
			hop, err := evaluate.Stretch(f.g, lm, nil, opt)
			if err != nil {
				t.Fatalf("%s %s: %v", f.name, mode, err)
			}
			wtd, err := evaluate.WeightedStretch(f.g, lm, w, nil, opt)
			if err != nil {
				t.Fatalf("%s %s: %v", f.name, mode, err)
			}
			if !reflect.DeepEqual(wtd, hop) {
				t.Fatalf("%s %s: uniform-weight report %+v != unweighted %+v", f.name, mode, wtd, hop)
			}
		}
	}
}
