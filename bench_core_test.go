// Core-kernel micro-benchmarks: the hot loops every paper quantity
// funnels through — BFS arc relaxation, all-pairs table construction,
// route simulation, and the streaming evaluator that composes all three.
// CI archives these as BENCH_core.json (see DESIGN.md "Bench
// trajectory") next to the evaluator suite, so the core perf trajectory
// accumulates one data point per run:
//
//	go test -run '^$' -bench 'BenchmarkBFS|BenchmarkMSBFS|BenchmarkAPSP|BenchmarkRouteVisit|BenchmarkEvaluateStreaming4096' \
//	    -benchtime 1x . | go run ./cmd/benchjson > BENCH_core.json
//
// The graphs are seeded random connected graphs with mean degree 8, the
// same family the evaluator scaling experiment (E18) sweeps, at the
// n >= 4096 orders where arc iteration dominates end-to-end time.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/evaluate"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/scheme/table"
	"repro/internal/shortest"
	"repro/internal/xrand"
)

// BenchmarkBFS measures one single-source traversal with caller-owned
// scratch — the per-row cost of the streaming distance backends.
func BenchmarkBFS(b *testing.B) {
	for _, n := range []int{2048, 4096} {
		g := benchGraph(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var dist []int32
			var queue []graph.NodeID
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dist, queue = shortest.BFSInto(g, graph.NodeID(i%n), dist, queue)
			}
			_ = dist
		})
	}
}

// BenchmarkBFSTree measures the parent-port tree build used by scheme
// constructors (one tree per root).
func BenchmarkBFSTree(b *testing.B) {
	g := benchGraph(4096)
	b.Run("n=4096", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			shortest.BFSTree(g, graph.NodeID(i%4096))
		}
	})
}

// BenchmarkMSBFS measures one full 64-source MS-BFS batch with
// caller-owned scratch — the per-block cost of the batched distance
// backends. Divide by 64 to compare against BenchmarkBFS's per-row
// cost: the batch shares one arc scan across all resident lanes.
func BenchmarkMSBFS(b *testing.B) {
	for _, n := range []int{2048, 4096} {
		g := benchGraph(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			srcs := make([]graph.NodeID, shortest.MSBFSWidth)
			var dist []int32
			var scr *shortest.MSBFSScratch
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				start := (i * shortest.MSBFSWidth) % n
				for j := range srcs {
					srcs[j] = graph.NodeID((start + j) % n)
				}
				dist, scr = shortest.MSBFSInto(g, srcs, dist, scr)
			}
			_ = dist
		})
	}
}

// BenchmarkAPSPBatched measures all-pairs table construction with each
// kernel pinned explicitly — the scalar-vs-batch comparison behind the
// -kernel flag, at the same orders BenchmarkAPSP sweeps.
func BenchmarkAPSPBatched(b *testing.B) {
	for _, n := range []int{512, 4096} {
		g := benchGraph(n)
		for _, k := range []shortest.Kernel{shortest.KernelScalar, shortest.KernelBatch} {
			b.Run(fmt.Sprintf("%s/n=%d", k, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					shortest.NewAPSPWith(g, shortest.APSPOptions{Kernel: k})
				}
			})
		}
	}
}

// BenchmarkAPSP measures all-pairs table construction, serial and
// worker-pool, at the orders where Theorem 1 sweeps and the E18 ladder
// spend their preprocessing time.
func BenchmarkAPSP(b *testing.B) {
	for _, n := range []int{512, 4096} {
		g := benchGraph(n)
		b.Run(fmt.Sprintf("serial/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				shortest.NewAPSP(g)
			}
		})
		b.Run(fmt.Sprintf("parallel/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				shortest.NewAPSPParallel(g, 0)
			}
		})
	}
}

// BenchmarkRouteVisit measures the allocation-free route simulator on
// shortest-path tables over a fixed pre-drawn pair set — the inner loop
// the all-pairs evaluator runs n(n-1) times.
func BenchmarkRouteVisit(b *testing.B) {
	const n = 4096
	g := benchGraph(n)
	s, err := table.New(g, shortest.NewAPSPParallel(g, 0), table.MinPort)
	if err != nil {
		b.Fatal(err)
	}
	r := xrand.New(3)
	pairs := make([][2]graph.NodeID, 4096)
	for i := range pairs {
		u := graph.NodeID(r.Intn(n))
		v := graph.NodeID(r.Intn(n - 1))
		if v >= u {
			v++
		}
		pairs[i] = [2]graph.NodeID{u, v}
	}
	b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
		b.ReportAllocs()
		var hops int
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			l := -1
			if err := routing.RouteVisit(g, s, p[0], p[1], 0, func(routing.Hop) { l++ }); err != nil {
				b.Fatal(err)
			}
			hops += l
		}
		_ = hops
	})
}

// BenchmarkEvaluateStreaming4096 measures the streaming all-pairs
// evaluator at n = 4096 — per-worker BFS row recomputation feeding
// millions of route simulations, the workload of the E18 ladder. The
// sampled sub-benchmark claims every source row (1M pairs spread over
// 4096 rows) so the BFS recomputation cost stays fully represented while
// the wall time stays CI-friendly; the exhaustive sub-benchmark routes
// all n(n-1) pairs.
func BenchmarkEvaluateStreaming4096(b *testing.B) {
	const n = 4096
	g := benchGraph(n)
	s, err := table.New(g, shortest.NewAPSPParallel(g, 0), table.MinPort)
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name   string
		sample int
	}{
		{"sampled1M", 1 << 20},
		{"exhaustive", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			opt := evaluate.Options{DistMode: evaluate.DistStream, Sample: bc.sample, Seed: 1}
			for i := 0; i < b.N; i++ {
				rep, err := evaluate.Stretch(g, s, nil, opt)
				if err != nil {
					b.Fatal(err)
				}
				if rep.Pairs == 0 {
					b.Fatal("no pairs measured")
				}
			}
		})
	}
}
